// Tests for the two remaining fork usage patterns: the mini-shell (U1: fork + exec, with
// redirections and pipelines) and the fork-server fuzzer (U5: fork to avoid per-case setup).
#include <gtest/gtest.h>

#include "src/apps/forkfuzz.h"
#include "src/apps/shell.h"
#include "src/baseline/system.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

KernelConfig ShellConfig() {
  KernelConfig config;
  config.layout.heap_size = 1 * kMiB;
  return config;
}

// --- command-line parser (host-side unit tests) ----------------------------------------------

TEST(ShellParser, PlainCommandWithArgs) {
  auto cmd = ParseCommandLine("seq 10 extra");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->program, "seq");
  EXPECT_EQ(cmd->args, (std::vector<std::string>{"10", "extra"}));
  EXPECT_TRUE(cmd->stdin_file.empty());
  EXPECT_TRUE(cmd->pipe_to.empty());
}

TEST(ShellParser, Redirections) {
  auto cmd = ParseCommandLine("upper < in.txt > out.txt");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->program, "upper");
  EXPECT_EQ(cmd->stdin_file, "in.txt");
  EXPECT_EQ(cmd->stdout_file, "out.txt");
}

TEST(ShellParser, Pipeline) {
  auto cmd = ParseCommandLine("seq 5 | count");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->program, "seq");
  EXPECT_EQ(cmd->pipe_to, "count");
}

TEST(ShellParser, Errors) {
  EXPECT_EQ(ParseCommandLine("").code(), Code::kErrInval);
  EXPECT_EQ(ParseCommandLine("cat <").code(), Code::kErrInval);
  EXPECT_EQ(ParseCommandLine("a | b extra").code(), Code::kErrInval);
}

// --- shell end to end ----------------------------------------------------------------------

void RunShell(GuestFn fn) {
  auto kernel = MakeUforkKernel(ShellConfig());
  RegisterShellUtilities(*kernel);
  auto pid = kernel->Spawn(MakeGuestEntry(std::move(fn)), "sh");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(ShellTest, CatWithRedirections) {
  RunShell([](Guest& g) -> SimTask<void> {
    Shell shell(g);
    // Seed the input file.
    auto fd = co_await g.Open("/in.txt", kOpenWrite | kOpenCreate);
    CO_ASSERT_OK(fd);
    auto msg = g.PlaceString("hello shell\n");
    CO_ASSERT_OK(msg);
    CO_ASSERT_OK(co_await g.Write(*fd, *msg, 12));
    CO_ASSERT_OK(co_await g.Close(*fd));

    auto status = co_await shell.Run("cat < /in.txt > /out.txt");
    CO_ASSERT_OK(status);
    EXPECT_EQ(*status, 0);
    auto out = co_await shell.Slurp("/out.txt");
    CO_ASSERT_OK(out);
    EXPECT_EQ(*out, "hello shell\n");
  });
}

TEST(ShellTest, UpperFilter) {
  RunShell([](Guest& g) -> SimTask<void> {
    Shell shell(g);
    auto fd = co_await g.Open("/in.txt", kOpenWrite | kOpenCreate);
    CO_ASSERT_OK(fd);
    auto msg = g.PlaceString("MiXeD case");
    CO_ASSERT_OK(msg);
    CO_ASSERT_OK(co_await g.Write(*fd, *msg, 10));
    CO_ASSERT_OK(co_await g.Close(*fd));
    auto status = co_await shell.Run("upper < /in.txt > /up.txt");
    CO_ASSERT_OK(status);
    EXPECT_EQ(*status, 0);
    auto out = co_await shell.Slurp("/up.txt");
    CO_ASSERT_OK(out);
    EXPECT_EQ(*out, "MIXED CASE");
  });
}

TEST(ShellTest, SeqWithArgumentAcrossExec) {
  RunShell([](Guest& g) -> SimTask<void> {
    Shell shell(g);
    auto status = co_await shell.Run("seq 4 > /seq.txt");
    CO_ASSERT_OK(status);
    EXPECT_EQ(*status, 0);
    auto out = co_await shell.Slurp("/seq.txt");
    CO_ASSERT_OK(out);
    EXPECT_EQ(*out, "1\n2\n3\n4\n");
  });
}

TEST(ShellTest, PipelineSeqIntoCount) {
  RunShell([](Guest& g) -> SimTask<void> {
    Shell shell(g);
    auto status = co_await shell.Run("seq 100 | count > /wc.txt");
    CO_ASSERT_OK(status);
    EXPECT_EQ(*status, 0);
    auto out = co_await shell.Slurp("/wc.txt");
    CO_ASSERT_OK(out);
    // seq 1..100 emits 100 lines totalling 9*2 + 90*3 + 4 = 292 bytes.
    EXPECT_EQ(*out, "100 292\n");
  });
}

TEST(ShellTest, UnknownProgramExits127) {
  RunShell([](Guest& g) -> SimTask<void> {
    Shell shell(g);
    auto status = co_await shell.Run("no-such-binary");
    CO_ASSERT_OK(status);
    EXPECT_EQ(*status, 127);
  });
}

// --- fork-server fuzzer -------------------------------------------------------------------------

TEST(ForkFuzz, FindsTheCrashDeterministically) {
  auto kernel = MakeUforkKernel(ShellConfig());
  FuzzStats stats;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&stats](Guest& g) -> SimTask<void> {
        const FuzzTarget target = MakeLookupTableTarget();
        CO_ASSERT_OK(target.initialize(g));
        co_await RunForkServer(g, target, /*iterations=*/120, /*seed=*/11, &stats);
      }),
      "fuzz");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(stats.executions, 120u);
  // Random 1-64 byte inputs hit the 0xEE trigger with probability ~12% per case.
  EXPECT_GT(stats.crashes, 0u) << "the planted out-of-bounds bug must be caught";
  EXPECT_LT(stats.crashes, stats.executions) << "clean inputs must pass";
}

TEST(ForkFuzz, CrashesDoNotCorruptTheServer) {
  // After a crashing child, the next case must still see pristine initialized state.
  auto kernel = MakeUforkKernel(ShellConfig());
  bool post_crash_clean_run = false;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&post_crash_clean_run](Guest& g) -> SimTask<void> {
        const FuzzTarget target = MakeLookupTableTarget();
        CO_ASSERT_OK(target.initialize(g));
        // Case 1: guaranteed crash input.
        FuzzStats crash_stats;
        GuestFn crash_fn = [&target](Guest& cg) -> SimTask<void> {
          const std::vector<std::byte> bad = {std::byte{0xEE}};
          const Result<void> verdict = target.execute(cg, bad);
          co_await cg.Exit(verdict.ok() ? 0 : 139);
        };
        auto crash_child = co_await g.Fork(std::move(crash_fn));
        CO_ASSERT_OK(crash_child);
        auto crash_wait = co_await g.Wait();
        CO_ASSERT_OK(crash_wait);
        EXPECT_EQ(crash_wait->status, 139);
        (void)crash_stats;
        // Case 2: clean input against the (unchanged) server state.
        GuestFn clean_fn = [&target](Guest& cg) -> SimTask<void> {
          const std::vector<std::byte> good = {std::byte{0x01}, std::byte{0x02}};
          const Result<void> verdict = target.execute(cg, good);
          co_await cg.Exit(verdict.ok() ? 0 : 139);
        };
        auto clean_child = co_await g.Fork(std::move(clean_fn));
        CO_ASSERT_OK(clean_child);
        auto clean_wait = co_await g.Wait();
        CO_ASSERT_OK(clean_wait);
        post_crash_clean_run = clean_wait->status == 0;
      }),
      "fuzz2");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_TRUE(post_crash_clean_run);
}

TEST(ForkFuzz, ForkServerBeatsRespawn) {
  // U5's whole point: amortizing initialization. Same cases, same seed.
  auto run = [](bool fork_server) {
    auto kernel = MakeUforkKernel(ShellConfig());
    FuzzStats stats;
    auto pid = kernel->Spawn(
        MakeGuestEntry([&stats, fork_server](Guest& g) -> SimTask<void> {
          const FuzzTarget target = MakeLookupTableTarget();
          CO_ASSERT_OK(target.initialize(g));
          if (fork_server) {
            co_await RunForkServer(g, target, 40, 3, &stats);
          } else {
            co_await RunRespawnBaseline(g, target, 40, 3, &stats);
          }
        }),
        "fuzz3");
    UF_CHECK(pid.ok());
    kernel->Run();
    return stats;
  };
  const FuzzStats with_server = run(true);
  const FuzzStats without = run(false);
  EXPECT_EQ(with_server.executions, without.executions);
  EXPECT_EQ(with_server.crashes, without.crashes) << "same seed, same verdicts";
  EXPECT_LT(with_server.elapsed * 3, without.elapsed)
      << "the fork server must amortize the per-case initialization";
}

}  // namespace
}  // namespace ufork
