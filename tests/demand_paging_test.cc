// Demand paging + unified VFS page cache (DESIGN.md §4.12), across all three systems.
//
// The contracts under test:
//   - Spawn under KernelConfig::demand_paging reserves heap/stack/TLS as frame-less
//     kPteNotPresent PTEs; the first touch demand-fills a zeroed window.
//   - The lowest stack page is a guard gap: touching it is an unresolvable fault → SIGSEGV
//     that kills only the faulting μprocess.
//   - A failed demand fill (FaultSite::kLazyFillAlloc / kPageCacheFill) is all-or-nothing:
//     the window's PTEs stay unpopulated, no frame leaks, and a retry after disarm succeeds —
//     there is no half-filled window to corrupt later faults.
//   - sbrk shrink releases memory (frames eagerly, reservations lazily) and regrowth is
//     reservation-backed under demand paging.
//   - SysMmapFile shares clean file pages through the page cache (one frame per file page,
//     however many mappers) and breaks to a private copy on the first write.
#include <gtest/gtest.h>

#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

KernelConfig SmallConfig(bool demand) {
  KernelConfig config;
  config.layout.text_size = 32 * kKiB;
  config.layout.rodata_size = 8 * kKiB;
  config.layout.got_size = 4 * kKiB;
  config.layout.data_size = 8 * kKiB;
  config.layout.heap_size = 256 * kKiB;
  config.layout.stack_size = 32 * kKiB;
  config.layout.tls_size = 4 * kKiB;
  config.layout.mmap_size = 64 * kKiB;
  config.demand_paging = demand;
  return config;
}

struct System {
  const char* name;
  std::unique_ptr<Kernel> (*make)(KernelConfig config);
};

const System kSystems[] = {
    {"ufork", [](KernelConfig c) { return MakeUforkKernel(c); }},
    {"mas", [](KernelConfig c) { return MakeMasKernel(c, MasParams{}); }},
    {"vmclone", [](KernelConfig c) { return MakeVmCloneKernel(c, VmCloneParams{}); }},
};

void RunOnAllSystems(bool demand, GuestFn fn) {
  for (const System& system : kSystems) {
    SCOPED_TRACE(system.name);
    auto kernel = system.make(SmallConfig(demand));
    auto pid = kernel->Spawn(MakeGuestEntry(fn), "demand-paging");
    ASSERT_TRUE(pid.ok());
    kernel->Run();
    // Whatever the guest did — fills, failed fills, CoW breaks, cache evictions — the
    // frame-accounting invariant must hold at quiesce.
    ASSERT_TRUE(kernel->CheckFrameAccounting().ok());
  }
}

// --- the tentpole: reservations at spawn, zero-filled windows on first touch -----------------

TEST(DemandPaging, SpawnReservesAndFirstTouchZeroFills) {
  RunOnAllSystems(/*demand=*/true, [](Guest& g) -> SimTask<void> {
    PageTable& pt = *g.uproc().page_table;
    // Heap, stack and TLS were mapped as frame-less reservations.
    CO_ASSERT_TRUE(pt.not_present_pages() > 0);
    const uint64_t resident0 = pt.resident_pages();
    const uint64_t reserved0 = pt.not_present_pages();
    const uint64_t filled0 = g.kernel().stats().pages_demand_filled.value();

    // An untouched heap-top page: reads as zero (fresh frame), then round-trips a store.
    const uint64_t va =
        g.base() + g.layout().heap_off() + g.layout().heap_size() - kPageSize;
    auto zero = g.Load<uint64_t>(g.ddc(), va);
    CO_ASSERT_OK(zero);
    CO_ASSERT_EQ(*zero, 0u);
    CO_ASSERT_OK(g.Store<uint64_t>(g.ddc(), va, 0xD15C0u));
    auto back = g.Load<uint64_t>(g.ddc(), va);
    CO_ASSERT_OK(back);
    CO_ASSERT_EQ(*back, 0xD15C0u);

    // The fault populated at least the touched page and billed it as a demand fill.
    CO_ASSERT_TRUE(pt.resident_pages() > resident0);
    CO_ASSERT_TRUE(pt.not_present_pages() < reserved0);
    CO_ASSERT_TRUE(g.kernel().stats().pages_demand_filled.value() > filled0);
    CO_ASSERT_TRUE(g.kernel().machine().demand_faults() > 0);
  });
}

TEST(DemandPaging, DemandImageIsSmallerThanEager) {
  for (const System& system : kSystems) {
    SCOPED_TRACE(system.name);
    uint64_t resident[2] = {0, 0};
    for (int demand = 0; demand < 2; ++demand) {
      uint64_t* slot = &resident[demand];
      auto kernel = system.make(SmallConfig(demand != 0));
      auto pid = kernel->Spawn(MakeGuestEntry([slot](Guest& g) -> SimTask<void> {
                                 *slot = g.kernel().ResidentFrames();
                                 co_return;
                               }),
                               "footprint");
      ASSERT_TRUE(pid.ok());
      kernel->Run();
    }
    // Same program, same layout: the demand image only populated text/rodata/GOT/data plus
    // the pages the C runtime actually touched.
    EXPECT_LT(resident[1], resident[0]);
  }
}

// --- stack growth edges (×3 systems): guard gap, growth to cap, fork inheritance -------------

TEST(DemandPaging, GuardGapTouchDeliversSigsegvAndParentSurvives) {
  RunOnAllSystems(/*demand=*/true, [](Guest& g) -> SimTask<void> {
    auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
      // The lowest stack page is deliberately unmapped: no PTE, nothing to fill.
      const uint64_t guard = cg.base() + cg.layout().stack_off();
      auto load = cg.Load<uint64_t>(cg.ddc(), guard);
      CO_ASSERT_TRUE(!load.ok());
      co_await cg.RaiseFault(load.error());
      ADD_FAILURE() << "a guard-gap touch must terminate the μprocess";
    });
    CO_ASSERT_OK(child);
    auto waited = co_await g.Wait();
    CO_ASSERT_OK(waited);
    CO_ASSERT_EQ(waited->status, 128 + kSigSegv);
    // Containment: the parent's own stack still grows on demand afterwards.
    const uint64_t mine = g.base() + g.layout().stack_off() + 2 * kPageSize;
    CO_ASSERT_OK(g.Store<uint64_t>(g.ddc(), mine, 1u));
    auto pid = co_await g.GetPid();
    CO_ASSERT_OK(pid);
  });
}

TEST(DemandPaging, StackGrowsToTheCapAndForkChildInheritsIt) {
  RunOnAllSystems(/*demand=*/true, [](Guest& g) -> SimTask<void> {
    const uint64_t stack_pages = g.layout().stack_size() / kPageSize;
    // March down the whole stack segment, page by page, to the guard gap: every page above
    // the guard demand-fills; the segment cap is exactly the reservation extent.
    for (uint64_t page = kStackGuardPages; page < stack_pages; ++page) {
      const uint64_t va = g.base() + g.layout().stack_off() + page * kPageSize + 8;
      CO_ASSERT_OK(g.Store<uint64_t>(g.ddc(), va, 0x5AC0u + page));
    }
    auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
      const uint64_t inherited_pages = cg.layout().stack_size() / kPageSize;
      // Populated stack state crossed the fork: every marker reads back at the child's base.
      for (uint64_t page = kStackGuardPages; page < inherited_pages; ++page) {
        const uint64_t va = cg.base() + cg.layout().stack_off() + page * kPageSize + 8;
        auto marker = cg.Load<uint64_t>(cg.ddc(), va);
        CO_ASSERT_OK(marker);
        CO_ASSERT_EQ(*marker, 0x5AC0u + page);
      }
      // Reservations crossed it too: a TLS page the parent never touched zero-fills here.
      const uint64_t tls = cg.base() + cg.layout().tls_off() + 8;
      auto fresh = cg.Load<uint64_t>(cg.ddc(), tls);
      CO_ASSERT_OK(fresh);
      CO_ASSERT_EQ(*fresh, 0u);
      co_await cg.Exit(0);
    });
    CO_ASSERT_OK(child);
    auto waited = co_await g.Wait();
    CO_ASSERT_OK(waited);
    CO_ASSERT_EQ(waited->status, 0);
  });
}

// --- sbrk: release on shrink, lazy regrowth ---------------------------------------------------

TEST(DemandPaging, SbrkShrinkDropsReservationsAndRegrowthFillsLazily) {
  RunOnAllSystems(/*demand=*/true, [](Guest& g) -> SimTask<void> {
    PageTable& pt = *g.uproc().page_table;
    auto top = co_await g.Sbrk(0);
    CO_ASSERT_OK(top);
    const uint64_t reserved0 = pt.not_present_pages();

    auto shrunk = co_await g.Sbrk(-4 * static_cast<int64_t>(kPageSize));
    CO_ASSERT_OK(shrunk);
    CO_ASSERT_EQ(*shrunk, *top);
    // The dropped heap-top pages were untouched reservations: no frames moved, only PTEs.
    CO_ASSERT_EQ(pt.not_present_pages(), reserved0 - 4);

    auto regrown = co_await g.Sbrk(4 * static_cast<int64_t>(kPageSize));
    CO_ASSERT_OK(regrown);
    CO_ASSERT_EQ(*regrown, *top - 4 * kPageSize);
    auto back_at_top = co_await g.Sbrk(0);
    CO_ASSERT_OK(back_at_top);
    CO_ASSERT_EQ(*back_at_top, *top);
    // Regrowth mapped reservations, not frames; the first touch zero-fills.
    CO_ASSERT_EQ(pt.not_present_pages(), reserved0);
    auto fresh = g.Load<uint64_t>(g.ddc(), *top - kPageSize);
    CO_ASSERT_OK(fresh);
    CO_ASSERT_EQ(*fresh, 0u);
  });
}

TEST(DemandPaging, EagerSbrkShrinkReleasesFramesImmediately) {
  RunOnAllSystems(/*demand=*/false, [](Guest& g) -> SimTask<void> {
    const FrameAllocator& frames = g.kernel().machine().frames();
    auto top = co_await g.Sbrk(0);
    CO_ASSERT_OK(top);
    const uint64_t frames0 = frames.frames_in_use();
    auto shrunk = co_await g.Sbrk(-2 * static_cast<int64_t>(kPageSize));
    CO_ASSERT_OK(shrunk);
    CO_ASSERT_EQ(frames.frames_in_use(), frames0 - 2);
    auto regrown = co_await g.Sbrk(2 * static_cast<int64_t>(kPageSize));
    CO_ASSERT_OK(regrown);
    CO_ASSERT_EQ(frames.frames_in_use(), frames0);
    // Eagerly repopulated: the regrown page is immediately writable and zeroed.
    auto fresh = g.Load<uint64_t>(g.ddc(), *top - kPageSize);
    CO_ASSERT_OK(fresh);
    CO_ASSERT_EQ(*fresh, 0u);
    CO_ASSERT_OK(g.Store<uint64_t>(g.ddc(), *top - kPageSize, 7u));
  });
}

// --- rollback: a failed demand fill is invisible (satellite: fault injection) ----------------

TEST(DemandPaging, FailedLazyFillLeavesTheWindowUnpopulated) {
  RunOnAllSystems(/*demand=*/true, [](Guest& g) -> SimTask<void> {
    Kernel& k = g.kernel();
    PageTable& pt = *g.uproc().page_table;
    const uint64_t stack_lo = g.base() + g.layout().stack_off();
    const uint64_t va = stack_lo + 2 * kPageSize;  // untouched stack reservation

    const uint64_t frames0 = k.machine().frames().frames_in_use();
    const uint64_t reserved0 = pt.not_present_pages();
    k.fault_injector().Arm(FaultSite::kLazyFillAlloc, FaultPolicy::AfterBudget(0));
    auto store = g.Store<uint64_t>(g.ddc(), va, 0xDEADu);
    k.fault_injector().DisarmAll();
    CO_ASSERT_TRUE(!store.ok());
    CO_ASSERT_EQ(store.code(), Code::kErrNoMem);

    // All-or-nothing: no frame was charged, no PTE in the window was populated — the pages
    // around the fault are exactly as reserved as before the attempt.
    CO_ASSERT_EQ(k.machine().frames().frames_in_use(), frames0);
    CO_ASSERT_EQ(pt.not_present_pages(), reserved0);
    for (uint64_t page = kStackGuardPages; page < 5; ++page) {
      auto pte = pt.Lookup(stack_lo + page * kPageSize);
      CO_ASSERT_TRUE(pte.has_value());
      CO_ASSERT_TRUE(!PtePopulated(*pte));
    }

    // And the window is still fillable: the retry succeeds with nothing half-done.
    CO_ASSERT_OK(g.Store<uint64_t>(g.ddc(), va, 0xBEEFu));
    auto back = g.Load<uint64_t>(g.ddc(), va);
    CO_ASSERT_OK(back);
    CO_ASSERT_EQ(*back, 0xBEEFu);
  });
}

TEST(DemandPaging, UnhandledFillFailureContainsToSigsegv) {
  RunOnAllSystems(/*demand=*/true, [](Guest& g) -> SimTask<void> {
    auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
      const uint64_t va = cg.base() + cg.layout().stack_off() + 3 * kPageSize;
      cg.kernel().fault_injector().Arm(FaultSite::kLazyFillAlloc,
                                       FaultPolicy::AfterBudget(0));
      auto store = cg.Store<uint64_t>(cg.ddc(), va, 1u);
      cg.kernel().fault_injector().DisarmAll();
      CO_ASSERT_TRUE(!store.ok());
      co_await cg.RaiseFault(store.error());
      ADD_FAILURE() << "an unhandled fill failure must terminate the μprocess";
    });
    CO_ASSERT_OK(child);
    auto waited = co_await g.Wait();
    CO_ASSERT_OK(waited);
    CO_ASSERT_EQ(waited->status, 128 + kSigSegv);
    auto pid = co_await g.GetPid();
    CO_ASSERT_OK(pid);
  });
}

// --- the unified page cache: sharing, CoW breaks, invalidation, fill failure -----------------

TEST(DemandPaging, MmapFileSharesCleanPagesAndWritesGoPrivate) {
  RunOnAllSystems(/*demand=*/true, [](Guest& g) -> SimTask<void> {
    // Author a two-page file: word 0xF00D on page 0, word 0xBEEF on page 1.
    auto buf = g.Malloc(2 * kPageSize);
    CO_ASSERT_OK(buf);
    CO_ASSERT_OK(g.StoreAt<uint64_t>(*buf, 0, 0xF00Du));
    CO_ASSERT_OK(g.StoreAt<uint64_t>(*buf, kPageSize, 0xBEEFu));
    auto fd = co_await g.Open("/shared.bin", kOpenWrite | kOpenCreate);
    CO_ASSERT_OK(fd);
    auto written = co_await g.Write(*fd, *buf, 2 * kPageSize);
    CO_ASSERT_OK(written);
    CO_ASSERT_EQ(*written, 2 * static_cast<int64_t>(kPageSize));
    CO_ASSERT_OK(co_await g.Close(*fd));

    const PageCache& cache = g.kernel().page_cache();
    const uint64_t fills0 = cache.fills();
    const uint64_t hits0 = cache.hits();

    auto m1 = co_await g.MmapFile("/shared.bin", 2 * kPageSize);
    CO_ASSERT_OK(m1);
    auto m2 = co_await g.MmapFile("/shared.bin", 2 * kPageSize);
    CO_ASSERT_OK(m2);

    auto a0 = g.Load<uint64_t>(*m1, m1->base());
    CO_ASSERT_OK(a0);
    CO_ASSERT_EQ(*a0, 0xF00Du);
    auto a1 = g.Load<uint64_t>(*m1, m1->base() + kPageSize);
    CO_ASSERT_OK(a1);
    CO_ASSERT_EQ(*a1, 0xBEEFu);
    auto b0 = g.Load<uint64_t>(*m2, m2->base());
    CO_ASSERT_OK(b0);
    CO_ASSERT_EQ(*b0, 0xF00Du);
    auto b1 = g.Load<uint64_t>(*m2, m2->base() + kPageSize);
    CO_ASSERT_OK(b1);
    CO_ASSERT_EQ(*b1, 0xBEEFu);

    // One fill per file page however many mappers; the second window only ever hit.
    CO_ASSERT_EQ(cache.fills() - fills0, 2u);
    CO_ASSERT_EQ(cache.hits() - hits0, 2u);
    CO_ASSERT_EQ(cache.resident_pages(), 2u);

    // The first write breaks CoW to a private copy; the other mapper and the file keep the
    // original bytes.
    CO_ASSERT_OK(g.Store<uint64_t>(*m1, m1->base(), 0x1234u));
    auto mine = g.Load<uint64_t>(*m1, m1->base());
    CO_ASSERT_OK(mine);
    CO_ASSERT_EQ(*mine, 0x1234u);
    auto theirs = g.Load<uint64_t>(*m2, m2->base());
    CO_ASSERT_OK(theirs);
    CO_ASSERT_EQ(*theirs, 0xF00Du);
    auto rfd = co_await g.Open("/shared.bin", kOpenRead);
    CO_ASSERT_OK(rfd);
    auto readback = g.Malloc(16);
    CO_ASSERT_OK(readback);
    auto got = co_await g.Read(*rfd, *readback, 8);
    CO_ASSERT_OK(got);
    auto word = g.LoadAt<uint64_t>(*readback);
    CO_ASSERT_OK(word);
    CO_ASSERT_EQ(*word, 0xF00Du);
    CO_ASSERT_OK(co_await g.Close(*rfd));
  });
}

TEST(DemandPaging, VfsWriteEvictsStaleCachePages) {
  auto kernel = MakeUforkKernel(SmallConfig(/*demand=*/true));
  auto pid = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
    auto buf = g.Malloc(64);
    CO_ASSERT_OK(buf);
    CO_ASSERT_OK(g.StoreAt<uint64_t>(*buf, 0, 0xAAAAu));
    auto fd = co_await g.Open("/config", kOpenWrite | kOpenCreate);
    CO_ASSERT_OK(fd);
    auto w1 = co_await g.Write(*fd, *buf, 8);
    CO_ASSERT_OK(w1);

    auto m1 = co_await g.MmapFile("/config", kPageSize);
    CO_ASSERT_OK(m1);
    auto v1 = g.Load<uint64_t>(*m1, m1->base());
    CO_ASSERT_OK(v1);
    CO_ASSERT_EQ(*v1, 0xAAAAu);

    // Rewriting the file drops the now-stale cached page...
    const PageCache& cache = g.kernel().page_cache();
    const uint64_t evictions0 = cache.evictions();
    CO_ASSERT_OK(co_await g.Seek(*fd, 0, 0));
    CO_ASSERT_OK(g.StoreAt<uint64_t>(*buf, 0, 0xBBBBu));
    auto w2 = co_await g.Write(*fd, *buf, 8);
    CO_ASSERT_OK(w2);
    CO_ASSERT_TRUE(cache.evictions() > evictions0);
    CO_ASSERT_OK(co_await g.Close(*fd));

    // ...so a fresh mapping re-fills from the new bytes. The existing private mapping keeps
    // whatever it saw (POSIX leaves post-mmap file updates to MAP_PRIVATE unspecified).
    auto m2 = co_await g.MmapFile("/config", kPageSize);
    CO_ASSERT_OK(m2);
    auto v2 = g.Load<uint64_t>(*m2, m2->base());
    CO_ASSERT_OK(v2);
    CO_ASSERT_EQ(*v2, 0xBBBBu);
  }),
                           "evict");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  ASSERT_TRUE(kernel->CheckFrameAccounting().ok());
}

TEST(DemandPaging, PageCacheFillFailureIsCleanEnomem) {
  // Demand mode: the fill failure surfaces at fault time, leaves the reservation intact, and
  // a disarmed retry succeeds.
  RunOnAllSystems(/*demand=*/true, [](Guest& g) -> SimTask<void> {
    auto buf = g.Malloc(64);
    CO_ASSERT_OK(buf);
    CO_ASSERT_OK(g.StoreAt<uint64_t>(*buf, 0, 0xC0FEu));
    auto fd = co_await g.Open("/cached", kOpenWrite | kOpenCreate);
    CO_ASSERT_OK(fd);
    CO_ASSERT_OK(co_await g.Write(*fd, *buf, 8));
    CO_ASSERT_OK(co_await g.Close(*fd));

    auto m = co_await g.MmapFile("/cached", kPageSize);
    CO_ASSERT_OK(m);
    Kernel& k = g.kernel();
    const uint64_t frames0 = k.machine().frames().frames_in_use();
    k.fault_injector().Arm(FaultSite::kPageCacheFill, FaultPolicy::AfterBudget(0));
    auto load = g.Load<uint64_t>(*m, m->base());
    k.fault_injector().DisarmAll();
    CO_ASSERT_TRUE(!load.ok());
    CO_ASSERT_EQ(load.code(), Code::kErrNoMem);
    CO_ASSERT_EQ(k.machine().frames().frames_in_use(), frames0);
    CO_ASSERT_EQ(k.page_cache().resident_pages(), 0u);
    auto retry = g.Load<uint64_t>(*m, m->base());
    CO_ASSERT_OK(retry);
    CO_ASSERT_EQ(*retry, 0xC0FEu);
  });
}

TEST(DemandPaging, EagerMmapFileFillFailureFailsTheSyscall) {
  // Eager mode: SysMmapFile populates at map time, so the injected fill failure surfaces as
  // the syscall's ENOMEM with nothing mapped and nothing leaked.
  auto kernel = MakeUforkKernel(SmallConfig(/*demand=*/false));
  auto pid = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
    auto buf = g.Malloc(64);
    CO_ASSERT_OK(buf);
    CO_ASSERT_OK(g.StoreAt<uint64_t>(*buf, 0, 0xE44u));
    auto fd = co_await g.Open("/eager", kOpenWrite | kOpenCreate);
    CO_ASSERT_OK(fd);
    CO_ASSERT_OK(co_await g.Write(*fd, *buf, 8));
    CO_ASSERT_OK(co_await g.Close(*fd));

    Kernel& k = g.kernel();
    const uint64_t frames0 = k.machine().frames().frames_in_use();
    k.fault_injector().Arm(FaultSite::kPageCacheFill, FaultPolicy::AfterBudget(0));
    auto failed = co_await g.MmapFile("/eager", kPageSize);
    k.fault_injector().DisarmAll();
    CO_ASSERT_EQ(failed.code(), Code::kErrNoMem);
    CO_ASSERT_EQ(k.machine().frames().frames_in_use(), frames0);

    auto m = co_await g.MmapFile("/eager", kPageSize);
    CO_ASSERT_OK(m);
    auto word = g.Load<uint64_t>(*m, m->base());
    CO_ASSERT_OK(word);
    CO_ASSERT_EQ(*word, 0xE44u);
  }),
                           "eager-fill-fail");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  ASSERT_TRUE(kernel->CheckFrameAccounting().ok());
}

// --- fleet footprint: the ratio the benchmark regression gate pins -----------------------------

TEST(DemandPaging, SpawnedFleetFootprintAtLeastHalvesUnderDemand) {
  uint64_t resident[2] = {0, 0};
  for (int demand = 0; demand < 2; ++demand) {
    uint64_t* slot = &resident[demand];
    auto kernel = MakeUforkKernel(SmallConfig(demand != 0));
    kernel->RegisterProgram("worker", MakeGuestEntry([](Guest& g) -> SimTask<void> {
                              // Stay resident while the parent samples the fleet footprint.
                              co_await g.Nanosleep(Cycles{10'000'000});
                            }));
    auto pid = kernel->Spawn(MakeGuestEntry([slot](Guest& g) -> SimTask<void> {
                               for (int i = 0; i < 8; ++i) {
                                 auto worker = co_await g.SpawnProgram("worker");
                                 CO_ASSERT_OK(worker);
                               }
                               *slot = g.kernel().ResidentFrames();
                               for (int i = 0; i < 8; ++i) {
                                 auto waited = co_await g.Wait();
                                 CO_ASSERT_OK(waited);
                               }
                             }),
                             "fleet");
    ASSERT_TRUE(pid.ok());
    kernel->Run();
  }
  ASSERT_GT(resident[0], 0u);
  ASSERT_GT(resident[1], 0u);
  // The regression gate in tools/check_regression.py pins this at ≤ 0.5× for the httpd
  // fleet benchmark; the unit-level spawn fleet must clear the same bar.
  EXPECT_LE(resident[1] * 2, resident[0]);
}

}  // namespace
}  // namespace ufork
