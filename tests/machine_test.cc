// Tests for the capability-checked memory access engine: translation, capability faults,
// resolvable CoW / capability-load (CoPA) faults, and cost charging.
#include "src/machine/machine.h"

#include <gtest/gtest.h>

namespace ufork {
namespace {

class MachineTest : public ::testing::Test {
 protected:
  MachineTest() : machine_(MachineConfig{.phys_frames = 1024, .costs = {}}) {
    machine_.set_cycle_sink([this](Cycles c) { charged_ += c; });
  }

  // Maps `pages` fresh frames at va_base with flags.
  void MapRange(uint64_t va_base, int pages, uint32_t flags) {
    for (int i = 0; i < pages; ++i) {
      pt_.Map(va_base + static_cast<uint64_t>(i) * kPageSize,
              machine_.frames().Allocate().value(), flags);
    }
  }

  Capability DataCap(uint64_t base, uint64_t len, uint32_t perms = kPermAllData) {
    return Capability::Root(base, len, perms);
  }

  Machine machine_;
  PageTable pt_;
  Cycles charged_ = 0;
};

TEST_F(MachineTest, ScalarRoundTrip) {
  MapRange(0x10000, 1, kPteRw);
  const Capability cap = DataCap(0x10000, kPageSize);
  ASSERT_TRUE(machine_.StoreScalar<uint64_t>(pt_, cap, 0x10008, 0xfeedface).ok());
  auto v = machine_.LoadScalar<uint64_t>(pt_, cap, 0x10008);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0xfeedfaceu);
  EXPECT_GT(charged_, 0u);
}

TEST_F(MachineTest, CrossPageAccessSpansFrames) {
  MapRange(0x10000, 2, kPteRw);
  const Capability cap = DataCap(0x10000, 2 * kPageSize);
  std::vector<std::byte> out(256);
  std::vector<std::byte> in(256, std::byte{0x5a});
  ASSERT_TRUE(machine_.Store(pt_, cap, 0x10000 + kPageSize - 128, in).ok());
  ASSERT_TRUE(machine_.Load(pt_, cap, 0x10000 + kPageSize - 128, out).ok());
  EXPECT_EQ(out, in);
}

TEST_F(MachineTest, CapabilityBoundsFaultBeforeTranslation) {
  const Capability cap = DataCap(0x10000, 16);
  std::array<std::byte, 8> buf{};
  EXPECT_EQ(machine_.Load(pt_, cap, 0x10010, buf).code(), Code::kFaultBounds);
}

TEST_F(MachineTest, UnmappedPageFaults) {
  const Capability cap = DataCap(0x10000, kPageSize);
  std::array<std::byte, 8> buf{};
  EXPECT_EQ(machine_.Load(pt_, cap, 0x10000, buf).code(), Code::kFaultNotMapped);
}

TEST_F(MachineTest, WriteToReadOnlyPageFaults) {
  MapRange(0x10000, 1, kPteRead);
  const Capability cap = DataCap(0x10000, kPageSize);
  std::array<std::byte, 8> buf{};
  EXPECT_EQ(machine_.Store(pt_, cap, 0x10000, buf).code(), Code::kFaultPageProt);
}

TEST_F(MachineTest, CowWriteFaultIsResolvedAndRetried) {
  MapRange(0x10000, 1, kPteRead | kPteCow);
  int resolver_calls = 0;
  machine_.set_fault_resolver([&](const PageFaultInfo& info) -> Result<void> {
    ++resolver_calls;
    EXPECT_EQ(info.kind, Code::kFaultPageProt);
    EXPECT_TRUE(info.is_write);
    EXPECT_EQ(info.va, 0x10000u);
    info.page_table->SetFlags(info.va, kPteRw);  // "copy" resolved: grant write
    return OkResult();
  });
  const Capability cap = DataCap(0x10000, kPageSize);
  ASSERT_TRUE(machine_.StoreScalar<uint32_t>(pt_, cap, 0x10000, 1).ok());
  EXPECT_EQ(resolver_calls, 1);
  EXPECT_EQ(machine_.cow_faults(), 1u);
  // Second write: no fault.
  ASSERT_TRUE(machine_.StoreScalar<uint32_t>(pt_, cap, 0x10000, 2).ok());
  EXPECT_EQ(resolver_calls, 1);
}

TEST_F(MachineTest, CowReadFaultOnNoAccessPage) {
  // CoA: page mapped with no read permission but CoW bit set — any access resolves.
  MapRange(0x10000, 1, kPteCow);
  machine_.set_fault_resolver([&](const PageFaultInfo& info) -> Result<void> {
    EXPECT_FALSE(info.is_write);
    info.page_table->SetFlags(info.va, kPteRw);
    return OkResult();
  });
  const Capability cap = DataCap(0x10000, kPageSize);
  EXPECT_TRUE(machine_.LoadScalar<uint32_t>(pt_, cap, 0x10000).ok());
}

TEST_F(MachineTest, UnresolvedCowFaultPropagates) {
  MapRange(0x10000, 1, kPteRead | kPteCow);
  machine_.set_fault_resolver(
      [](const PageFaultInfo&) -> Result<void> { return Code::kErrNoMem; });
  const Capability cap = DataCap(0x10000, kPageSize);
  std::array<std::byte, 4> buf{};
  EXPECT_EQ(machine_.Store(pt_, cap, 0x10000, buf).code(), Code::kErrNoMem);
}

TEST_F(MachineTest, CapLoadFaultFiresOnlyForTaggedGranules) {
  MapRange(0x10000, 1, kPteRead | kPteLoadCapFault | kPteCow);
  // Plant a tagged capability at 0x10020 and an integer at 0x10040 via kernel stores.
  machine_.KernelStoreCap(pt_, 0x10020, DataCap(0x10000, 64));
  machine_.KernelStoreCap(pt_, 0x10040, Capability::Integer(1234));

  int resolver_calls = 0;
  machine_.set_fault_resolver([&](const PageFaultInfo& info) -> Result<void> {
    ++resolver_calls;
    EXPECT_EQ(info.kind, Code::kFaultCapLoadPage);
    // Resolve by dropping the attribute (the fork engine would copy + relocate).
    info.page_table->SetFlags(info.va, kPteRead);
    return OkResult();
  });

  const Capability cap = DataCap(0x10000, kPageSize);
  // Integer load: no fault even though the attribute is set.
  auto integer = machine_.LoadCap(pt_, cap, 0x10040);
  ASSERT_TRUE(integer.ok());
  EXPECT_FALSE(integer->tag());
  EXPECT_EQ(integer->address(), 1234u);
  EXPECT_EQ(resolver_calls, 0);
  // Tagged load: faults once, then succeeds.
  auto tagged = machine_.LoadCap(pt_, cap, 0x10020);
  ASSERT_TRUE(tagged.ok());
  EXPECT_TRUE(tagged->tag());
  EXPECT_EQ(resolver_calls, 1);
  EXPECT_EQ(machine_.cap_load_faults(), 1u);
}

TEST_F(MachineTest, LoadCapRequiresLoadCapPermission) {
  MapRange(0x10000, 1, kPteRead);
  const Capability cap = DataCap(0x10000, kPageSize, kPermLoad);  // no LoadCap
  EXPECT_EQ(machine_.LoadCap(pt_, cap, 0x10000).code(), Code::kFaultPermission);
}

TEST_F(MachineTest, StoreCapOfIntegerNeedsNoStoreCapPerm) {
  MapRange(0x10000, 1, kPteRw);
  const Capability cap = DataCap(0x10000, kPageSize, kPermLoad | kPermStore);
  EXPECT_TRUE(machine_.StoreCap(pt_, cap, 0x10000, Capability::Integer(5)).ok());
  // But storing a tagged capability requires kPermStoreCap.
  EXPECT_EQ(machine_.StoreCap(pt_, cap, 0x10010, DataCap(0x10000, 16)).code(),
            Code::kFaultPermission);
}

TEST_F(MachineTest, CapStoreThenDataOverwriteDropsTagThroughEngine) {
  MapRange(0x10000, 1, kPteRw);
  const Capability cap = DataCap(0x10000, kPageSize);
  ASSERT_TRUE(machine_.StoreCap(pt_, cap, 0x10020, DataCap(0x10000, 32)).ok());
  ASSERT_TRUE(machine_.StoreScalar<uint8_t>(pt_, cap, 0x10025, 0xff).ok());
  auto loaded = machine_.LoadCap(pt_, cap, 0x10020);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->tag());
}

TEST_F(MachineTest, GuestCopyMovesBytes) {
  MapRange(0x10000, 4, kPteRw);
  const Capability cap = DataCap(0x10000, 4 * kPageSize);
  std::vector<std::byte> blob(3 * kPageSize / 2);
  for (size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::byte>(i * 31);
  }
  ASSERT_TRUE(machine_.Store(pt_, cap, 0x10000, blob).ok());
  ASSERT_TRUE(machine_.Copy(pt_, cap, 0x10000 + 2 * kPageSize, cap, 0x10000,
                            blob.size()).ok());
  std::vector<std::byte> out(blob.size());
  ASSERT_TRUE(machine_.Load(pt_, cap, 0x10000 + 2 * kPageSize, out).ok());
  EXPECT_EQ(out, blob);
}

TEST_F(MachineTest, BulkCostScalesWithSize) {
  MapRange(0x10000, 16, kPteRw);
  const Capability cap = DataCap(0x10000, 16 * kPageSize);
  std::vector<std::byte> small(64), large(16 * kKiB);
  charged_ = 0;
  ASSERT_TRUE(machine_.Store(pt_, cap, 0x10000, small).ok());
  const Cycles small_cost = charged_;
  charged_ = 0;
  ASSERT_TRUE(machine_.Store(pt_, cap, 0x10000, large).ok());
  EXPECT_GT(charged_, small_cost * 10);
}

}  // namespace
}  // namespace ufork
