// Incremental concurrent compaction (DESIGN.md §4.13, ISSUE 9).
//
// The stop-the-world compactor's tests (ufork_test.cc) prove the move mechanics; these prove
// the *concurrent* machinery around them:
//
//   - MutatorStorm: budgeted compaction interleaved with a fork/sbrk/mmap/exit storm across
//     {BKL, per-service} × {demand paging on, off}. Parked victims slide left as the storm
//     vacates slots below them; their GOT-reachable sentinels, heap breaks and reservation
//     tags survive; guest-visible outcomes match a compaction-free control run.
//   - MidMoveSyscallParksOnBarrier: a μprocess woken while its region is mid-move parks on
//     the service's barrier at syscall reacquire and resumes only after the commit.
//   - MidMoveForwardingResolvesMovedHalf: while a move is in flight, raw accesses to the
//     already-moved half of the source region resolve through the VA forwarder to the
//     destination; after the commit the stale half faults.
//   - ForgedReadOfSweptRangeFaults: a capability planted into a live μprocess's memory whose
//     bounds fall inside a later freed-and-quarantined region is untagged by the revocation
//     sweep; dereference faults and the range becomes reusable.
//   - StopTheWorldRefusesInsideSimulatedThread: the CompactAddressSpace safepoint contract
//     is enforced with a Result error, not silently trusted.
//
// The mid-move tests run hole + victim + observer inside ONE Run() with the fragmentation
// trigger enabled: the hole's exit arms the service, and the observer — a live μprocess the
// planner must skip as busy — polls the in-flight move window and acts mid-move. Spawning a
// fresh observer between Runs would not work: first-fit would hand it exactly the hole the
// victim is meant to move into.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "src/ufork/compaction.h"
#include "src/ufork/revocation.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

KernelConfig TinyConfig() {
  KernelConfig config;
  config.layout.text_size = 32 * kKiB;
  config.layout.rodata_size = 8 * kKiB;
  config.layout.got_size = 4 * kKiB;
  config.layout.data_size = 8 * kKiB;
  config.layout.heap_size = 256 * kKiB;
  config.layout.stack_size = 32 * kKiB;
  config.layout.tls_size = 4 * kKiB;
  config.layout.mmap_size = 64 * kKiB;
  return config;
}

KernelConfig IncrementalConfig(uint64_t budget_pages, Cycles interval, bool trigger = false) {
  KernelConfig config = TinyConfig();
  config.compact_budget_pages = budget_pages;
  config.compact_step_interval = interval;
  config.quarantine_freed_regions = true;
  if (trigger) {
    // One vacated slot below a three-region high-water mark is 1/3 ≈ 0.33 slot
    // fragmentation, so 0.2 arms as soon as the first hole opens.
    config.compact_trigger.enabled = true;
    config.compact_trigger.arm_fragmentation = 0.2;
    config.compact_trigger.clear_fragmentation = 0.05;
  }
  return config;
}

// Parks the caller on a named message queue until a waker posts. The buffer capability held
// across the park may be stale after a move (the safepoint contract): the read's result is
// deliberately ignored, and callers re-derive state through the GOT afterwards.
SimTask<void> ParkOnQueue(Guest& g, const std::string& name) {
  auto fd = co_await g.MqOpen(name, /*create=*/true);
  UF_CHECK(fd.ok());
  auto buf = g.Malloc(16);
  UF_CHECK(buf.ok());
  (void)co_await g.Read(*fd, *buf, 1);
}

GuestFn MakeWaker(std::string queue) {
  GuestFn fn = [queue](Guest& g) -> SimTask<void> {
    auto fd = co_await g.MqOpen(queue, /*create=*/true);
    CO_ASSERT_OK(fd);
    auto buf = g.Malloc(16);
    CO_ASSERT_OK(buf);
    CO_ASSERT_OK(co_await g.Write(*fd, *buf, 1));
  };
  return fn;
}

// A μprocess that vacates its slot after idling long enough for its neighbours to reach
// their parking safepoints — the trigger arms on its exit, and the pass it arms must find
// the victims already quiescent (a pass that skips them as busy disarms for good unless
// later churn re-arms it).
GuestFn MakeHole() {
  return [](Guest& g) -> SimTask<void> {
    g.Compute(10);
    CO_ASSERT_OK(co_await g.Nanosleep(20'000));
  };
}

// A victim that parks at a safepoint with a sentinel reachable through its GOT, verifying
// the sentinel (and implicitly its own relocation) once woken.
GuestFn MakeParkedVictim(std::string queue, bool& ok_after_wake) {
  return [queue, &ok_after_wake](Guest& g) -> SimTask<void> {
    auto block = g.Malloc(64);
    CO_ASSERT_OK(block);
    CO_ASSERT_OK(g.StoreAt<uint64_t>(*block, 0, 31337));
    CO_ASSERT_OK(g.GotStore(kGotSlotFirstUser, *block));
    // The break starts at the static heap top; shrink it so the victim carries a
    // non-default break that must survive relocation.
    CO_ASSERT_OK(co_await g.Sbrk(-static_cast<int64_t>(kPageSize)));
    co_await ParkOnQueue(g, queue);
    auto cap = g.GotLoad(kGotSlotFirstUser);
    CO_ASSERT_OK(cap);
    CO_ASSERT_TRUE(cap->tag());
    CO_ASSERT_TRUE(cap->base() >= g.base() && cap->top() <= g.base() + 408 * kKiB);
    auto v = g.LoadAt<uint64_t>(*cap, 0);
    CO_ASSERT_OK(v);
    ok_after_wake = *v == 31337;
  };
}

// One storm worker: anonymous mmap, heap churn, and a short-lived fork. The child's exit and
// the worker's own exit vacate regions concurrently with the compactor's quanta. Wait is a
// safepoint where the worker itself may be relocated (it is quiescent while blocked), so the
// heap capability crosses it through the GOT, μFork-discipline style.
SimTask<void> StormWorker(Guest& g, int id, bool& done) {
  auto mapped = co_await g.MmapAnon(2 * kPageSize);
  CO_ASSERT_OK(mapped);
  CO_ASSERT_OK(g.Store<uint64_t>(*mapped, mapped->base(), 0x5EED + id));
  CO_ASSERT_OK(co_await g.Sbrk(-static_cast<int64_t>(2 * kPageSize)));
  CO_ASSERT_OK(co_await g.Sbrk(2 * kPageSize));
  auto block = g.Malloc(512);
  CO_ASSERT_OK(block);
  CO_ASSERT_OK(g.StoreAt<uint64_t>(*block, 0, id));
  CO_ASSERT_OK(g.GotStore(kGotSlotFirstUser, *block));
  auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
    auto cblock = cg.Malloc(128);
    CO_ASSERT_OK(cblock);
    co_await cg.Exit(7);
  });
  CO_ASSERT_OK(child);
  auto reaped = co_await g.Wait();
  CO_ASSERT_OK(reaped);
  CO_ASSERT_EQ(reaped->status, 7);
  auto back_cap = g.GotLoad(kGotSlotFirstUser);
  CO_ASSERT_OK(back_cap);
  auto back = g.LoadAt<uint64_t>(*back_cap, 0);
  CO_ASSERT_OK(back);
  CO_ASSERT_EQ(static_cast<int>(*back), id);
  done = true;
  co_await g.Exit(7);
}

struct StormOutcome {
  bool v1_ok = false;
  bool v2_ok = false;
  bool v3_ok = false;
  bool v4_ok = false;
  std::array<bool, 4> worker_done = {};
  uint64_t v1_base_delta = 0;  // spawn base minus final base (0 = did not move)
  uint64_t v3_base_delta = 0;
  uint64_t v1_heap_off_before = 0;
  uint64_t v1_heap_off_after = 0;
  bool v1_reserve_before = false;
  bool v1_reserve_after = false;
  uint64_t regions_moved = 0;
  uint64_t compact_steps = 0;
  uint64_t pause_cycles_max = 0;
};

StormOutcome RunStorm(bool compacted, LockMode lock_mode, bool demand_paging) {
  KernelConfig config = compacted ? IncrementalConfig(/*budget_pages=*/4, /*interval=*/1'500,
                                                      /*trigger=*/true)
                                  : TinyConfig();
  config.lock_mode = lock_mode;
  config.demand_paging = demand_paging;
  auto kernel = MakeUforkKernel(config);
  kernel->sched().set_allow_blocked_exit(true);
  StormOutcome out;

  // Phase 1: two holes interleaved with two parked victims. The holes' exits raise slot
  // fragmentation past the arm threshold, so the trigger starts packing the victims left as
  // soon as the quarantined slots are swept — no explicit Kick.
  auto h1 = kernel->Spawn(MakeGuestEntry(MakeHole()), "hole1");
  auto v1 = kernel->Spawn(MakeGuestEntry(MakeParkedVictim("/mq/storm-v1", out.v1_ok)), "V1");
  auto h2 = kernel->Spawn(MakeGuestEntry(MakeHole()), "hole2");
  auto v2 = kernel->Spawn(MakeGuestEntry(MakeParkedVictim("/mq/storm-v2", out.v2_ok)), "V2");
  UF_CHECK(h1.ok() && v1.ok() && h2.ok() && v2.ok());
  const uint64_t v1_spawn_base = kernel->FindUproc(*v1)->base;
  out.v1_reserve_before = kernel->address_space().IsReserveOnly(v1_spawn_base);
  kernel->Run();

  {
    Uproc* victim1 = kernel->FindUproc(*v1);
    UF_CHECK(victim1 != nullptr);
    out.v1_heap_off_before = victim1->heap_break - victim1->base;
  }

  if (compacted) {
    EXPECT_TRUE(kernel->compaction().Kick());
  } else {
    EXPECT_FALSE(kernel->compaction().Kick()) << "budget 0 must leave the service disabled";
  }

  // Phase 2: the storm, plus two more parked victims spawned ABOVE it. Workers fork, exit
  // and vacate slots under V3/V4 while those park; the trigger re-arms on that churn and
  // slides them down between worker slices.
  for (int id = 0; id < 4; ++id) {
    bool* done = &out.worker_done[static_cast<size_t>(id)];
    auto w = kernel->Spawn(MakeGuestEntry([id, done](Guest& g) -> SimTask<void> {
                             co_await StormWorker(g, id, *done);
                           }),
                           "storm-" + std::to_string(id));
    UF_CHECK(w.ok());
  }
  auto v3 = kernel->Spawn(MakeGuestEntry(MakeParkedVictim("/mq/storm-v3", out.v3_ok)), "V3");
  auto v4 = kernel->Spawn(MakeGuestEntry(MakeParkedVictim("/mq/storm-v4", out.v4_ok)), "V4");
  UF_CHECK(v3.ok() && v4.ok());
  // Two long-idling holes above V4. The storm may burn out before V3/V4 reach their parking
  // safepoints (every armed pass until then skips them as busy and disarms); these exits are
  // guaranteed-late churn that re-arms the trigger once the victims are parked.
  for (const Cycles idle : {Cycles{120'000}, Cycles{160'000}}) {
    UF_CHECK(kernel
                 ->Spawn(MakeGuestEntry([idle](Guest& g) -> SimTask<void> {
                           CO_ASSERT_OK(co_await g.Nanosleep(idle));
                         }),
                         "late-hole")
                 .ok());
  }
  const uint64_t v3_spawn_base = kernel->FindUproc(*v3)->base;
  kernel->Run();

  // Sample post-move state while the victims are still parked (records are reaped once they
  // wake and exit in phase 3).
  {
    Uproc* victim1 = kernel->FindUproc(*v1);
    Uproc* victim3 = kernel->FindUproc(*v3);
    UF_CHECK(victim1 != nullptr && victim3 != nullptr);
    out.v1_base_delta = v1_spawn_base - victim1->base;
    out.v3_base_delta = v3_spawn_base - victim3->base;
    out.v1_heap_off_after = victim1->heap_break - victim1->base;
    out.v1_reserve_after = kernel->address_space().IsReserveOnly(victim1->base);
  }
  out.regions_moved = kernel->stats().compact_regions_moved;
  out.compact_steps = kernel->stats().compact_steps;
  out.pause_cycles_max = kernel->stats().pause_cycles_max;

  // Phase 3: wake the victims; they verify their sentinels from relocated state.
  for (const char* queue : {"/mq/storm-v1", "/mq/storm-v2", "/mq/storm-v3", "/mq/storm-v4"}) {
    UF_CHECK(kernel->Spawn(MakeGuestEntry(MakeWaker(queue)), "waker").ok());
  }
  kernel->Run();

  if (compacted) {
    // Post-storm hygiene: drain the quarantine and prove the revocation invariant.
    SweepQuarantineToCompletion(*kernel);
    const auto invariant = CheckRevocationInvariant(*kernel);
    EXPECT_TRUE(invariant.ok()) << (invariant.ok() ? "" : invariant.error().message);
    EXPECT_EQ(kernel->address_space().Stats().quarantined_bytes, 0u);
  }
  return out;
}

TEST(CompactionConcurrent, MutatorStormAcrossLockModesAndPaging) {
  for (const LockMode mode : {LockMode::kBigKernelLock, LockMode::kPerService}) {
    for (const bool demand : {false, true}) {
      SCOPED_TRACE(std::string(mode == LockMode::kBigKernelLock ? "bkl" : "per-service") +
                   (demand ? "/demand" : "/eager"));
      const StormOutcome control = RunStorm(/*compacted=*/false, mode, demand);
      const StormOutcome compacted = RunStorm(/*compacted=*/true, mode, demand);

      // Guest-visible outcomes are compaction-invariant.
      EXPECT_TRUE(control.v1_ok && control.v2_ok && control.v3_ok && control.v4_ok);
      EXPECT_TRUE(compacted.v1_ok && compacted.v2_ok && compacted.v3_ok && compacted.v4_ok);
      for (size_t i = 0; i < 4; ++i) {
        EXPECT_TRUE(control.worker_done[i]) << "worker " << i;
        EXPECT_TRUE(compacted.worker_done[i]) << "worker " << i;
      }

      // The control run never compacts; the compacted run packed the early victims into the
      // phase-1 holes and slid V3 into storm-vacated slots, over multiple bounded quanta,
      // preserving break offsets and reservation state.
      EXPECT_EQ(control.regions_moved, 0u);
      EXPECT_EQ(control.v1_base_delta, 0u);
      EXPECT_GE(compacted.regions_moved, 3u);
      EXPECT_GT(compacted.v1_base_delta, 0u);
      EXPECT_GT(compacted.v3_base_delta, 0u) << "V3 must ride down into storm-vacated slots";
      EXPECT_GE(compacted.compact_steps, 10u);
      EXPECT_GT(compacted.pause_cycles_max, 0u);
      EXPECT_EQ(compacted.v1_heap_off_after, compacted.v1_heap_off_before);
      EXPECT_EQ(compacted.v1_reserve_after, compacted.v1_reserve_before);
      if (demand) {
        EXPECT_TRUE(compacted.v1_reserve_before) << "demand paging spawns reserve-only";
      }
    }
  }
}

TEST(CompactionConcurrent, MidMoveSyscallParksOnBarrier) {
  auto kernel = MakeUforkKernel(
      IncrementalConfig(/*budget_pages=*/2, /*interval=*/3'000, /*trigger=*/true));
  kernel->sched().set_allow_blocked_exit(true);
  Kernel* k = kernel.get();
  bool victim_ok = false;
  bool woke_mid_move = false;

  // The observer stays live (the planner must skip it as busy) and wakes the victim the
  // moment its move is in flight: the reacquire path must park on the barrier, not race the
  // mover. Spawned first so it sits below the hole and never blocks the victim's target.
  uint64_t victim_base = 0;
  auto observer = kernel->Spawn(
      MakeGuestEntry([k, &victim_base, &woke_mid_move](Guest& g) -> SimTask<void> {
        for (int i = 0; i < 100'000; ++i) {
          const auto window = k->compaction().CurrentMove();
          if (window.has_value() && window->from_base == victim_base &&
              window->moved_pages >= 2) {
            woke_mid_move = true;
            break;
          }
          CO_ASSERT_OK(co_await g.Nanosleep(200));
        }
        CO_ASSERT_TRUE(woke_mid_move);
        auto fd = co_await g.MqOpen("/mq/barrier", /*create=*/true);
        CO_ASSERT_OK(fd);
        auto buf = g.Malloc(16);
        CO_ASSERT_OK(buf);
        CO_ASSERT_OK(co_await g.Write(*fd, *buf, 1));
      }),
      "observer");
  auto hole = kernel->Spawn(MakeGuestEntry(MakeHole()), "hole");
  auto victim =
      kernel->Spawn(MakeGuestEntry(MakeParkedVictim("/mq/barrier", victim_ok)), "victim");
  ASSERT_TRUE(observer.ok() && hole.ok() && victim.ok());
  victim_base = kernel->FindUproc(*victim)->base;

  // One Run: the hole exits, the trigger arms, the sweep frees the hole's slot, the victim
  // (parked by then) starts moving into it, and the observer fires mid-move.
  kernel->Run();

  EXPECT_TRUE(woke_mid_move);
  EXPECT_TRUE(victim_ok) << "victim must resume from relocated state after the barrier";
  EXPECT_GE(kernel->stats().compact_regions_moved, 1u);
  EXPECT_GE(kernel->stats().compact_parked, 1u)
      << "the mid-move wakeup must have parked on the compaction barrier";
}

TEST(CompactionConcurrent, MidMoveForwardingResolvesMovedHalf) {
  auto kernel = MakeUforkKernel(
      IncrementalConfig(/*budget_pages=*/1, /*interval=*/2'000, /*trigger=*/true));
  kernel->sched().set_allow_blocked_exit(true);
  Kernel* k = kernel.get();
  bool victim_ok = false;
  bool forwarded_matches = false;
  bool stale_half_faults_after_commit = false;
  uint64_t victim_base = 0;
  uint64_t probe_va = 0;
  uint64_t probe_index = 0;

  auto observer = kernel->Spawn(
      MakeGuestEntry([k, &victim_base, &probe_va, &probe_index, &forwarded_matches,
                      &stale_half_faults_after_commit](Guest& g) -> SimTask<void> {
        // Wait until the probe page is inside the moved prefix but the move is still live.
        std::optional<RelocationWindow> window;
        for (int i = 0; i < 100'000; ++i) {
          window = k->compaction().CurrentMove();
          if (window.has_value() && window->from_base == victim_base &&
              window->moved_pages > probe_index) {
            break;
          }
          window.reset();
          CO_ASSERT_OK(co_await g.Nanosleep(150));
        }
        CO_ASSERT_TRUE(window.has_value());
        // No suspension between the poll and the reads: the window cannot advance under us.
        const Capability stale = Capability::Root(probe_va, kPageSize, kPermAllData);
        std::array<std::byte, 64> via_old{};
        auto old_read = g.ReadBytes(stale, probe_va, via_old);
        CO_ASSERT_OK(old_read);
        const uint64_t dst_va = window->to_base + (probe_va - victim_base);
        const Capability fresh = Capability::Root(dst_va, kPageSize, kPermAllData);
        std::array<std::byte, 64> via_new{};
        auto new_read = g.ReadBytes(fresh, dst_va, via_new);
        CO_ASSERT_OK(new_read);
        const bool nonzero = std::any_of(via_new.begin(), via_new.end(),
                                         [](std::byte b) { return b != std::byte{0}; });
        forwarded_matches = nonzero && via_old == via_new;
        // After the commit the stale half must be unmapped: no forwarding, no silent reuse.
        for (int i = 0; i < 100'000 && k->compaction().CurrentMove().has_value(); ++i) {
          CO_ASSERT_OK(co_await g.Nanosleep(150));
        }
        auto stale_read = g.ReadBytes(stale, probe_va, via_old);
        stale_half_faults_after_commit =
            !stale_read.ok() && stale_read.code() == Code::kFaultNotMapped;
        // Only now wake the victim, so the reads above raced nothing but the mover.
        auto fd = co_await g.MqOpen("/mq/forward", /*create=*/true);
        CO_ASSERT_OK(fd);
        auto buf = g.Malloc(16);
        CO_ASSERT_OK(buf);
        CO_ASSERT_OK(co_await g.Write(*fd, *buf, 1));
      }),
      "observer");
  auto hole = kernel->Spawn(MakeGuestEntry(MakeHole()), "hole");
  auto victim =
      kernel->Spawn(MakeGuestEntry(MakeParkedVictim("/mq/forward", victim_ok)), "victim");
  ASSERT_TRUE(observer.ok() && hole.ok() && victim.ok());

  Uproc* v = kernel->FindUproc(*victim);
  victim_base = v->base;
  // The victim's first heap page holds allocator metadata and the sentinel block — live,
  // nonzero content to compare across the two halves of a mid-flight move. Its position in
  // the VA-ascending mapped-page list gives the moved_pages watermark to wait for (the page
  // the victim's Sbrk shrink later unmaps sits above it, so the index is stable).
  probe_va = victim_base + kernel->layout().heap_off();
  std::vector<uint64_t> mapped_vas;
  v->page_table->ForEachMapped(v->base, v->base + v->size,
                               [&](uint64_t va, const Pte&) { mapped_vas.push_back(va); });
  const auto probe_it = std::find(mapped_vas.begin(), mapped_vas.end(), probe_va);
  ASSERT_NE(probe_it, mapped_vas.end());
  probe_index = static_cast<uint64_t>(probe_it - mapped_vas.begin());

  kernel->Run();

  EXPECT_TRUE(forwarded_matches)
      << "a moved-half access must resolve through the forwarder to identical bytes";
  EXPECT_TRUE(stale_half_faults_after_commit);
  EXPECT_GE(kernel->stats().compact_regions_moved, 1u);
  EXPECT_TRUE(victim_ok);
}

TEST(CompactionConcurrent, ForgedReadOfSweptRangeFaults) {
  auto kernel = MakeUforkKernel(IncrementalConfig(/*budget_pages=*/4, /*interval=*/2'000));
  kernel->sched().set_allow_blocked_exit(true);

  // L lives through the whole test; D's region will be freed and quarantined.
  Code observed_deref = Code::kOk;
  bool l_checked = false;
  auto l = kernel->Spawn(
      MakeGuestEntry([&observed_deref, &l_checked](Guest& g) -> SimTask<void> {
        co_await ParkOnQueue(g, "/mq/live");
        // The host planted a capability into GOT slot 4 whose bounds lie inside D's
        // now-swept region: it must come back untagged, and dereference must fault.
        auto cap = g.GotLoad(kGotSlotFirstUser + 2);
        CO_ASSERT_OK(cap);
        CO_ASSERT_TRUE(!cap->tag());
        auto v = g.LoadAt<uint64_t>(*cap, 0);
        CO_ASSERT_TRUE(!v.ok());
        observed_deref = v.code();
        l_checked = true;
      }),
      "L");
  auto d = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                           co_await ParkOnQueue(g, "/mq/doomed");
                           co_await g.Exit(0);
                         }),
                         "D");
  ASSERT_TRUE(l.ok() && d.ok());
  kernel->Run();

  Uproc* live = kernel->FindUproc(*l);
  Uproc* doomed = kernel->FindUproc(*d);
  ASSERT_TRUE(live != nullptr && doomed != nullptr);
  const uint64_t doomed_base = doomed->base;
  const uint64_t doomed_size = doomed->size;

  // Plant a forged capability into L's GOT frame, bounds inside D's (still live) region.
  const uint64_t got_va = live->base + kernel->layout().got_off();
  Pte* got_pte = live->page_table->LookupMutable(got_va);
  ASSERT_NE(got_pte, nullptr);
  ASSERT_TRUE(PtePopulated(*got_pte));
  Frame& got_frame = kernel->machine().frames().frame(got_pte->frame);
  const uint64_t slot_off = static_cast<uint64_t>(kGotSlotFirstUser + 2) * kCapSize;
  got_frame.StoreCap(slot_off, Capability::Root(doomed_base + 0x100, 64, kPermAllData));
  ASSERT_TRUE(got_frame.LoadCap(slot_off).tag());

  // D exits: its region is quarantined, region churn starts the service, and the budgeted
  // sweep walks live tagged frames — including L's GOT — revoking the forged capability.
  ASSERT_TRUE(kernel->Spawn(MakeGuestEntry(MakeWaker("/mq/doomed")), "wake-d").ok());
  kernel->Run();

  EXPECT_GE(kernel->stats().caps_revoked, 1u);
  EXPECT_FALSE(got_frame.LoadCap(slot_off).tag())
      << "the sweep must untag capabilities bounded inside the quarantined range";
  EXPECT_EQ(kernel->address_space().Stats().quarantined_bytes, 0u)
      << "the service must have drained the quarantine before going idle";
  EXPECT_TRUE(CheckRevocationInvariant(*kernel).ok());

  // The swept range is reusable.
  auto regrant = kernel->address_space().AllocateRegionAt(doomed_base, doomed_size);
  EXPECT_TRUE(regrant.ok());
  if (regrant.ok()) {
    kernel->address_space().FreeRegion(doomed_base);
  }

  // L wakes and proves the guest-visible half: untagged load, faulting dereference.
  ASSERT_TRUE(kernel->Spawn(MakeGuestEntry(MakeWaker("/mq/live")), "wake-l").ok());
  kernel->Run();
  EXPECT_TRUE(l_checked);
  EXPECT_EQ(observed_deref, Code::kFaultTag);
}

TEST(CompactionConcurrent, StopTheWorldRefusesInsideSimulatedThread) {
  auto kernel = MakeUforkKernel(TinyConfig());
  Kernel* k = kernel.get();
  Code observed = Code::kOk;
  bool ran = false;
  auto pid = kernel->Spawn(MakeGuestEntry([k, &observed, &ran](Guest& g) -> SimTask<void> {
                             auto res = CompactAddressSpace(*k);
                             observed = res.ok() ? Code::kOk : res.code();
                             ran = true;
                             g.Compute(1);
                             co_return;
                           }),
                           "in-thread");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(observed, Code::kErrAgain)
      << "the safepoint contract must be enforced, not assumed";

  // From outside any simulated thread the same call is the supported stop-the-world path.
  EXPECT_TRUE(CompactAddressSpace(*kernel).ok());
}

}  // namespace
}  // namespace ufork
