// Parameterized fork-semantics suite: the POSIX behaviours transparency (R2) demands, swept
// across every (backend × copy strategy × isolation level) combination that claims to support
// them. One test body, many configurations — if any mechanism breaks a semantic, the matrix
// says exactly which one.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/base/rng.h"

#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

struct ForkConfig {
  const char* name;
  int backend;  // 0 = uFork, 1 = MAS, 2 = VM clone
  ForkStrategy strategy = ForkStrategy::kCopa;
  IsolationLevel isolation = IsolationLevel::kFull;
};

std::unique_ptr<Kernel> MakeKernel(const ForkConfig& fc) {
  KernelConfig config;
  config.layout.heap_size = 2 * kMiB;
  config.strategy = fc.strategy;
  config.isolation = fc.isolation;
  switch (fc.backend) {
    case 0:
      return MakeUforkKernel(config);
    case 1:
      return MakeMasKernel(config);
    default:
      return MakeVmCloneKernel(config);
  }
}

class ForkSemanticsTest : public ::testing::TestWithParam<ForkConfig> {};

// The full sweep. UnsafeCoW is deliberately absent: it does not claim full semantics.
INSTANTIATE_TEST_SUITE_P(
    AllBackends, ForkSemanticsTest,
    ::testing::Values(
        ForkConfig{"uFork_CoPA_full", 0, ForkStrategy::kCopa, IsolationLevel::kFull},
        ForkConfig{"uFork_CoPA_fault", 0, ForkStrategy::kCopa, IsolationLevel::kFault},
        ForkConfig{"uFork_CoPA_none", 0, ForkStrategy::kCopa, IsolationLevel::kNone},
        ForkConfig{"uFork_CoA_full", 0, ForkStrategy::kCoa, IsolationLevel::kFull},
        ForkConfig{"uFork_Full_full", 0, ForkStrategy::kFull, IsolationLevel::kFull},
        ForkConfig{"MAS_full", 1, ForkStrategy::kCopa, IsolationLevel::kFull},
        ForkConfig{"VmClone_full", 2, ForkStrategy::kCopa, IsolationLevel::kFull}),
    [](const ::testing::TestParamInfo<ForkConfig>& param_info) { return param_info.param.name; });

TEST_P(ForkSemanticsTest, ChildSeesForkTimeSnapshotBidirectionalIsolation) {
  auto kernel = MakeKernel(GetParam());
  int checks = 0;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&checks](Guest& g) -> SimTask<void> {
        // A spread of state: heap block, data-segment word, a pointer chain.
        auto a = g.Malloc(128);
        auto b = g.Malloc(128);
        CO_ASSERT_OK(a);
        CO_ASSERT_OK(b);
        CO_ASSERT_OK(g.StoreAt<uint64_t>(*a, 0, 100));
        CO_ASSERT_OK(g.StoreAt<uint64_t>(*b, 0, 200));
        CO_ASSERT_OK(g.StoreCap(*a, a->base() + 16, *b));  // a -> b chain
        CO_ASSERT_OK(g.GotStore(kGotSlotFirstUser, *a));
        const uint64_t data_va = g.base() + g.layout().data_off();
        CO_ASSERT_OK(g.Store<uint64_t>(g.ddc(), data_va, 300));

        auto child = co_await g.Fork([&checks](Guest& cg) -> SimTask<void> {
          auto a_cap = cg.GotLoad(kGotSlotFirstUser);
          CO_ASSERT_OK(a_cap);
          auto v_a = cg.LoadAt<uint64_t>(*a_cap, 0);
          CO_ASSERT_OK(v_a);
          EXPECT_EQ(*v_a, 100u);
          // Follow the pointer chain: b must be reachable and correct in the child.
          auto b_cap = cg.LoadCap(*a_cap, a_cap->base() + 16);
          CO_ASSERT_OK(b_cap);
          CO_ASSERT_TRUE(b_cap->tag());
          auto v_b = cg.LoadAt<uint64_t>(*b_cap, 0);
          CO_ASSERT_OK(v_b);
          EXPECT_EQ(*v_b, 200u);
          auto v_data =
              cg.Load<uint64_t>(cg.ddc(), cg.base() + cg.layout().data_off());
          CO_ASSERT_OK(v_data);
          EXPECT_EQ(*v_data, 300u);
          // Mutate everything: none of it may reach the parent.
          CO_ASSERT_OK(cg.StoreAt<uint64_t>(*a_cap, 0, 111));
          CO_ASSERT_OK(cg.StoreAt<uint64_t>(*b_cap, 0, 222));
          CO_ASSERT_OK(
              cg.Store<uint64_t>(cg.ddc(), cg.base() + cg.layout().data_off(), 333));
          ++checks;
          co_await cg.Exit(0);
        });
        CO_ASSERT_OK(child);
        // Parent mutates too: none of it may reach the child (it already read, or reads the
        // fork-time values via CoW).
        CO_ASSERT_OK(g.StoreAt<uint64_t>(*a, 0, 109));
        auto waited = co_await g.Wait();
        CO_ASSERT_OK(waited);
        EXPECT_EQ(waited->status, 0);
        auto v_a = g.LoadAt<uint64_t>(*a, 0);
        auto v_b = g.LoadAt<uint64_t>(*b, 0);
        auto v_data = g.Load<uint64_t>(g.ddc(), data_va);
        CO_ASSERT_OK(v_a);
        CO_ASSERT_OK(v_b);
        CO_ASSERT_OK(v_data);
        EXPECT_EQ(*v_a, 109u);   // parent's own write
        EXPECT_EQ(*v_b, 200u);   // untouched by child
        EXPECT_EQ(*v_data, 300u);
        ++checks;
      }),
      "semantics");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(checks, 2);
}

TEST_P(ForkSemanticsTest, WaitReturnsEachChildExactlyOnce) {
  auto kernel = MakeKernel(GetParam());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        std::vector<Pid> children;
        for (int i = 0; i < 4; ++i) {
          auto child = co_await g.Fork([i](Guest& cg) -> SimTask<void> {
            co_await cg.Exit(10 + i);
          });
          CO_ASSERT_OK(child);
          children.push_back(*child);
        }
        std::map<Pid, int> reaped;
        for (int i = 0; i < 4; ++i) {
          auto waited = co_await g.Wait();
          CO_ASSERT_OK(waited);
          EXPECT_EQ(reaped.count(waited->pid), 0u) << "double reap";
          reaped[waited->pid] = waited->status;
        }
        EXPECT_EQ(reaped.size(), 4u);
        for (size_t i = 0; i < children.size(); ++i) {
          CO_ASSERT_TRUE(reaped.count(children[i]) == 1);
          EXPECT_EQ(reaped[children[i]], 10 + static_cast<int>(i));
        }
        auto no_more = co_await g.Wait();
        EXPECT_EQ(no_more.code(), Code::kErrChild);
      }),
      "reaper");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST_P(ForkSemanticsTest, PipeAndFdSemanticsAcrossFork) {
  auto kernel = MakeKernel(GetParam());
  std::string received;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&received](Guest& g) -> SimTask<void> {
        auto pipe_fds = co_await g.Pipe();
        CO_ASSERT_OK(pipe_fds);
        const auto [rfd, wfd] = *pipe_fds;
        auto child = co_await g.Fork([rfd = rfd, wfd = wfd](Guest& cg) -> SimTask<void> {
          (void)co_await cg.Close(rfd);
          auto msg = cg.PlaceString("ipc");
          CO_ASSERT_OK(msg);
          CO_ASSERT_OK(co_await cg.Write(wfd, *msg, 3));
          co_await cg.Exit(0);
        });
        CO_ASSERT_OK(child);
        CO_ASSERT_OK(co_await g.Close(wfd));
        auto buf = g.Malloc(16);
        CO_ASSERT_OK(buf);
        auto n = co_await g.Read(rfd, *buf, 16);
        CO_ASSERT_OK(n);
        CO_ASSERT_EQ(*n, 3);
        auto bytes = g.FetchBytes(*buf, 3);
        CO_ASSERT_OK(bytes);
        received.assign(reinterpret_cast<const char*>(bytes->data()), 3);
        auto eof = co_await g.Read(rfd, *buf, 16);
        CO_ASSERT_OK(eof);
        EXPECT_EQ(*eof, 0);
        (void)co_await g.Wait();
      }),
      "fds");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(received, "ipc");
}

TEST_P(ForkSemanticsTest, GrandchildrenChain) {
  auto kernel = MakeKernel(GetParam());
  uint64_t leaf_value = 0;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&leaf_value](Guest& g) -> SimTask<void> {
        auto cell = g.Malloc(16);
        CO_ASSERT_OK(cell);
        CO_ASSERT_OK(g.StoreAt<uint64_t>(*cell, 0, 1));
        CO_ASSERT_OK(g.GotStore(kGotSlotFirstUser, *cell));
        auto child = co_await g.Fork([&leaf_value](Guest& g1) -> SimTask<void> {
          auto cell1 = g1.GotLoad(kGotSlotFirstUser);
          CO_ASSERT_OK(cell1);
          auto v = g1.LoadAt<uint64_t>(*cell1, 0);
          CO_ASSERT_OK(v);
          CO_ASSERT_OK(g1.StoreAt<uint64_t>(*cell1, 0, *v + 1));
          auto grandchild = co_await g1.Fork([&leaf_value](Guest& g2) -> SimTask<void> {
            auto cell2 = g2.GotLoad(kGotSlotFirstUser);
            CO_ASSERT_OK(cell2);
            auto v2 = g2.LoadAt<uint64_t>(*cell2, 0);
            CO_ASSERT_OK(v2);
            leaf_value = *v2 + 1;
            co_await g2.Exit(0);
          });
          CO_ASSERT_OK(grandchild);
          (void)co_await g1.Wait();
          co_await g1.Exit(0);
        });
        CO_ASSERT_OK(child);
        (void)co_await g.Wait();
      }),
      "generations");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(leaf_value, 3u) << "each generation increments the inherited counter once";
}

// --- randomized fork-storm property test --------------------------------------------------------

class ForkStormTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ForkStormTest, ::testing::Values(1u, 7u, 42u, 1337u));

// A parent builds a random array in guest memory, forks a chain of children at random points,
// each child verifies the fork-time snapshot against a host-side reference and mutates
// randomly; the parent's final state must match the host model exactly. Exercises CoW/CoPA in
// both directions under randomized access patterns.
TEST_P(ForkStormTest, SnapshotsMatchReferenceModel) {
  const uint64_t seed = GetParam();
  KernelConfig config;
  config.layout.heap_size = 2 * kMiB;
  auto kernel = MakeUforkKernel(config);
  auto pid = kernel->Spawn(
      MakeGuestEntry([seed](Guest& g) -> SimTask<void> {
        constexpr uint64_t kWords = 2048;  // 16 KiB working set across 4 pages
        auto array = g.Malloc(kWords * 8);
        CO_ASSERT_OK(array);
        std::vector<uint64_t> model(kWords, 0);
        Rng rng(seed);
        for (uint64_t i = 0; i < kWords; ++i) {
          model[i] = rng.NextU64();
          CO_ASSERT_OK(g.StoreAt<uint64_t>(*array, i * 8, model[i]));
        }
        CO_ASSERT_OK(g.GotStore(kGotSlotFirstUser, *array));

        for (int round = 0; round < 6; ++round) {
          // Snapshot for the child: verify a random sample, then mutate a random subset.
          const std::vector<uint64_t> snapshot = model;
          auto child = co_await g.Fork([&snapshot, seed, round](Guest& cg) -> SimTask<void> {
            auto arr = cg.GotLoad(kGotSlotFirstUser);
            CO_ASSERT_OK(arr);
            Rng crng(seed * 1000 + static_cast<uint64_t>(round));
            std::set<uint64_t> scribbled;
            for (int probe = 0; probe < 200; ++probe) {
              const uint64_t i = crng.NextBelow(snapshot.size());
              auto v = cg.LoadAt<uint64_t>(*arr, i * 8);
              CO_ASSERT_OK(v);
              const uint64_t expected =
                  scribbled.count(i) != 0 ? ~snapshot[i] : snapshot[i];
              EXPECT_EQ(*v, expected) << "round " << round << " index " << i;
              // Scribble over the child's copy; must never reach the parent.
              CO_ASSERT_OK(cg.StoreAt<uint64_t>(*arr, i * 8, ~snapshot[i]));
              scribbled.insert(i);
            }
            co_await cg.Exit(0);
          });
          CO_ASSERT_OK(child);
          // Parent mutates concurrently with the child's verification.
          for (int m = 0; m < 100; ++m) {
            const uint64_t i = rng.NextBelow(kWords);
            model[i] = rng.NextU64();
            CO_ASSERT_OK(g.StoreAt<uint64_t>(*array, i * 8, model[i]));
          }
          auto waited = co_await g.Wait();
          CO_ASSERT_OK(waited);
          EXPECT_EQ(waited->status, 0);
        }
        // Final sweep: the parent's array must match the host model word for word.
        for (uint64_t i = 0; i < kWords; ++i) {
          auto v = g.LoadAt<uint64_t>(*array, i * 8);
          CO_ASSERT_OK(v);
          if (*v != model[i]) {
            ADD_FAILURE() << "divergence at " << i;
            co_return;
          }
        }
      }),
      "storm");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(kernel->stats().forks, 6u);
}

}  // namespace
}  // namespace ufork
