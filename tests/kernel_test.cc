// Integration tests for the kernel: μprocess lifecycle, syscalls, pipes, VFS, and the
// isolation machinery — on the μFork backend.
#include "src/kernel/kernel.h"

#include <gtest/gtest.h>

#include "tests/guest_test_util.h"

#include "src/baseline/system.h"
#include "src/guest/guest.h"

namespace ufork {
namespace {

KernelConfig SmallConfig() {
  KernelConfig config;
  config.layout.text_size = 64 * kKiB;
  config.layout.rodata_size = 16 * kKiB;
  config.layout.got_size = 4 * kKiB;
  config.layout.data_size = 16 * kKiB;
  config.layout.heap_size = 512 * kKiB;
  config.layout.stack_size = 64 * kKiB;
  config.layout.tls_size = 4 * kKiB;
  config.layout.mmap_size = 256 * kKiB;
  return config;
}

TEST(Kernel, SpawnRunsToCompletion) {
  auto kernel = MakeUforkKernel(SmallConfig());
  bool ran = false;
  auto pid = kernel->Spawn(MakeGuestEntry([&ran](Guest& g) -> SimTask<void> {
                             auto self = co_await g.GetPid();
                             EXPECT_TRUE(self.ok());
                             EXPECT_EQ(*self, 1);
                             ran = true;
                           }),
                           "init");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(kernel->stats().exits, 1u);
  EXPECT_EQ(kernel->FindUproc(1), nullptr) << "init should be reaped after exit";
}

TEST(Kernel, GuestMemoryRoundTripThroughCapabilities) {
  auto kernel = MakeUforkKernel(SmallConfig());
  auto pid = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                             auto block = g.Malloc(256);
                             CO_ASSERT_TRUE(block.ok());
                             EXPECT_EQ(block->length(), 256u);
                             CO_ASSERT_TRUE(g.StoreAt<uint64_t>(*block, 0, 0x1234).ok());
                             auto v = g.LoadAt<uint64_t>(*block, 0);
                             CO_ASSERT_TRUE(v.ok());
                             EXPECT_EQ(*v, 0x1234u);
                             // Out-of-bounds through the tight allocation capability faults.
                             EXPECT_EQ(g.Load<uint64_t>(*block, block->base() + 256).code(),
                                       Code::kFaultBounds);
                             CO_ASSERT_TRUE(g.Free(*block).ok());
                             co_return;
                           }),
                           "mem");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(Kernel, ForkChildSeesParentHeapAndIsIsolatedOnWrite) {
  auto kernel = MakeUforkKernel(SmallConfig());
  int checks = 0;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&checks](Guest& g) -> SimTask<void> {
        auto block = g.Malloc(64);
        CO_ASSERT_TRUE(block.ok());
        CO_ASSERT_TRUE(g.StoreAt<uint64_t>(*block, 0, 42).ok());
        // Publish the block through a GOT slot so the (relocated) child finds it.
        CO_ASSERT_TRUE(g.GotStore(kGotSlotFirstUser, *block).ok());

        auto child_pid = co_await g.Fork([&checks](Guest& cg) -> SimTask<void> {
          // The GOT was proactively copied and relocated: the slot holds a capability into
          // the CHILD region now.
          auto cap = cg.GotLoad(kGotSlotFirstUser);
          CO_ASSERT_TRUE(cap.ok());
          EXPECT_TRUE(cap->tag());
          EXPECT_GE(cap->base(), cg.base());
          EXPECT_LT(cap->base(), cg.base() + cg.uproc().size);
          auto v = cg.LoadAt<uint64_t>(*cap, 0);  // CoPA copy happens underneath
          CO_ASSERT_TRUE(v.ok());
          EXPECT_EQ(*v, 42u);
          // Child write must not be visible to the parent.
          CO_ASSERT_TRUE(cg.StoreAt<uint64_t>(*cap, 0, 99).ok());
          ++checks;
          co_await cg.Exit(7);
        });
        CO_ASSERT_TRUE(child_pid.ok());
        auto waited = co_await g.Wait();
        CO_ASSERT_TRUE(waited.ok());
        EXPECT_EQ(waited->pid, *child_pid);
        EXPECT_EQ(waited->status, 7);
        auto v = g.LoadAt<uint64_t>(*block, 0);
        CO_ASSERT_TRUE(v.ok());
        EXPECT_EQ(*v, 42u) << "parent data must be unaffected by the child's write";
        ++checks;
      }),
      "forker");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(checks, 2);
  EXPECT_EQ(kernel->stats().forks, 1u);
}

TEST(Kernel, ParentWriteAfterForkDoesNotLeakToChild) {
  auto kernel = MakeUforkKernel(SmallConfig());
  int checks = 0;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&checks](Guest& g) -> SimTask<void> {
        auto block = g.Malloc(64);
        CO_ASSERT_TRUE(block.ok());
        CO_ASSERT_TRUE(g.StoreAt<uint64_t>(*block, 0, 1).ok());
        CO_ASSERT_TRUE(g.GotStore(kGotSlotFirstUser, *block).ok());
        auto child_pid = co_await g.Fork([&checks](Guest& cg) -> SimTask<void> {
          // Let the parent write first.
          co_await cg.Nanosleep(Milliseconds(1));
          auto cap = cg.GotLoad(kGotSlotFirstUser);
          CO_ASSERT_TRUE(cap.ok());
          auto v = cg.LoadAt<uint64_t>(*cap, 0);
          CO_ASSERT_TRUE(v.ok());
          EXPECT_EQ(*v, 1u) << "child must see the pre-fork value, not the parent's update";
          ++checks;
          co_await cg.Exit(0);
        });
        CO_ASSERT_TRUE(child_pid.ok());
        CO_ASSERT_TRUE(g.StoreAt<uint64_t>(*block, 0, 2).ok());  // CoW break on parent side
        auto waited = co_await g.Wait();
        CO_ASSERT_TRUE(waited.ok());
        ++checks;
      }),
      "cow-parent");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(checks, 2);
  EXPECT_GE(kernel->machine().cow_faults(), 1u);
}

TEST(Kernel, WaitWithNoChildrenReturnsEchild) {
  auto kernel = MakeUforkKernel(SmallConfig());
  auto pid = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                             auto waited = co_await g.Wait();
                             EXPECT_EQ(waited.code(), Code::kErrChild);
                           }),
                           "lonely");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(Kernel, PipeTransfersDataBetweenProcesses) {
  auto kernel = MakeUforkKernel(SmallConfig());
  std::string received;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&received](Guest& g) -> SimTask<void> {
        auto pipe_fds = co_await g.Pipe();
        CO_ASSERT_TRUE(pipe_fds.ok());
        const auto [rfd, wfd] = *pipe_fds;
        auto child_pid = co_await g.Fork([wfd](Guest& cg) -> SimTask<void> {
          auto msg = cg.PlaceString("hello from the child");
          CO_ASSERT_TRUE(msg.ok());
          auto n = co_await cg.Write(wfd, *msg, msg->length());
          CO_ASSERT_TRUE(n.ok());
          EXPECT_EQ(*n, static_cast<int64_t>(msg->length()));
          co_await cg.Exit(0);
        });
        CO_ASSERT_TRUE(child_pid.ok());
        CO_ASSERT_TRUE((co_await g.Close(wfd)).ok());
        auto buf = g.Malloc(64);
        CO_ASSERT_TRUE(buf.ok());
        auto n = co_await g.Read(rfd, *buf, 64);
        CO_ASSERT_TRUE(n.ok());
        auto bytes = g.FetchBytes(*buf, static_cast<uint64_t>(*n));
        CO_ASSERT_TRUE(bytes.ok());
        received.assign(reinterpret_cast<const char*>(bytes->data()), bytes->size());
        // EOF after the child (sole writer) exits.
        auto eof = co_await g.Read(rfd, *buf, 64);
        CO_ASSERT_TRUE(eof.ok());
        EXPECT_EQ(*eof, 0);
        (void)co_await g.Wait();
      }),
      "piper");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(received, "hello from the child");
}

TEST(Kernel, VfsWriteReadRoundTrip) {
  auto kernel = MakeUforkKernel(SmallConfig());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto fd = co_await g.Open("/data.bin", kOpenWrite | kOpenCreate);
        CO_ASSERT_TRUE(fd.ok());
        auto msg = g.PlaceString("persistent bytes");
        CO_ASSERT_TRUE(msg.ok());
        CO_ASSERT_TRUE((co_await g.Write(*fd, *msg, msg->length())).ok());
        CO_ASSERT_TRUE((co_await g.Close(*fd)).ok());

        auto size = co_await g.FileSize("/data.bin");
        CO_ASSERT_TRUE(size.ok());
        EXPECT_EQ(*size, 16u);

        auto rfd = co_await g.Open("/data.bin", kOpenRead);
        CO_ASSERT_TRUE(rfd.ok());
        auto buf = g.Malloc(32);
        CO_ASSERT_TRUE(buf.ok());
        auto n = co_await g.Read(*rfd, *buf, 32);
        CO_ASSERT_TRUE(n.ok());
        EXPECT_EQ(*n, 16);
        auto bytes = g.FetchBytes(*buf, 16);
        CO_ASSERT_TRUE(bytes.ok());
        EXPECT_EQ(std::string(reinterpret_cast<const char*>(bytes->data()), 16),
                  "persistent bytes");
        CO_ASSERT_TRUE((co_await g.Rename("/data.bin", "/renamed.bin")).ok());
        auto gone = co_await g.Open("/data.bin", kOpenRead);
        EXPECT_EQ(gone.code(), Code::kErrNoEnt);
        co_return;
      }),
      "fs");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(Kernel, FdsInheritedAcrossFork) {
  auto kernel = MakeUforkKernel(SmallConfig());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto fd = co_await g.Open("/log.txt", kOpenWrite | kOpenCreate);
        CO_ASSERT_TRUE(fd.ok());
        auto child_pid = co_await g.Fork([fd = *fd](Guest& cg) -> SimTask<void> {
          auto msg = cg.PlaceString("child");
          CO_ASSERT_TRUE(msg.ok());
          CO_ASSERT_TRUE((co_await cg.Write(fd, *msg, 5)).ok());
          co_await cg.Exit(0);
        });
        CO_ASSERT_TRUE(child_pid.ok());
        (void)co_await g.Wait();
        // Shared offset: the parent's write lands after the child's.
        auto msg = g.PlaceString("parent");
        CO_ASSERT_TRUE(msg.ok());
        CO_ASSERT_TRUE((co_await g.Write(*fd, *msg, 6)).ok());
        auto size = co_await g.FileSize("/log.txt");
        CO_ASSERT_TRUE(size.ok());
        EXPECT_EQ(*size, 11u);
      }),
      "fd-inherit");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(Kernel, MmapAnonReturnsBoundedCapability) {
  auto kernel = MakeUforkKernel(SmallConfig());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto cap = co_await g.MmapAnon(8 * kKiB);
        CO_ASSERT_TRUE(cap.ok());
        EXPECT_EQ(cap->length(), 8 * kKiB);
        CO_ASSERT_TRUE(g.Store<uint64_t>(*cap, cap->base() + 4096, 5).ok());
        auto v = g.Load<uint64_t>(*cap, cap->base() + 4096);
        CO_ASSERT_TRUE(v.ok());
        EXPECT_EQ(*v, 5u);
        // Exhaustion of the mmap zone.
        auto too_big = co_await g.MmapAnon(1 * kGiB);
        EXPECT_EQ(too_big.code(), Code::kErrNoMem);
        co_return;
      }),
      "mmap");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(Kernel, KillTerminatesTarget) {
  auto kernel = MakeUforkKernel(SmallConfig());
  bool victim_finished = false;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&victim_finished](Guest& g) -> SimTask<void> {
        auto child_pid = co_await g.Fork([&victim_finished](Guest& cg) -> SimTask<void> {
          co_await cg.Nanosleep(Seconds(100));
          victim_finished = true;  // must never run
          co_await cg.Exit(0);
        });
        CO_ASSERT_TRUE(child_pid.ok());
        co_await g.Nanosleep(Milliseconds(1));
        CO_ASSERT_TRUE((co_await g.Kill(*child_pid)).ok());
        auto waited = co_await g.Wait();
        CO_ASSERT_TRUE(waited.ok());
        EXPECT_EQ(waited->status, -9);
      }),
      "killer");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_FALSE(victim_finished);
}

TEST(Kernel, PrivilegedOpDeniedToUserCode) {
  auto kernel = MakeUforkKernel(SmallConfig());
  auto pid = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                             auto r = co_await g.PrivilegedOp();
                             EXPECT_EQ(r.code(), Code::kFaultSystem);
                           }),
                           "priv");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(Kernel, CrossUprocDirectAddressingFaults) {
  auto kernel = MakeUforkKernel(SmallConfig());
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto child_pid = co_await g.Fork([](Guest& cg) -> SimTask<void> {
          // Direct addressing attack (§3.3): forge an address into the parent's region. The
          // DDC's bounds stop it.
          const uint64_t parent_base = cg.kernel().FindUproc(1)->base;
          auto r = cg.Load<uint64_t>(cg.ddc(), parent_base + cg.layout().heap_off());
          EXPECT_EQ(r.code(), Code::kFaultBounds);
          co_await cg.Exit(0);
        });
        CO_ASSERT_TRUE(child_pid.ok());
        (void)co_await g.Wait();
      }),
      "attacker");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(Kernel, SyscallBufferOutsideRegionRejected) {
  auto kernel = MakeUforkKernel(SmallConfig());  // isolation kFull by default
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto fd = co_await g.Open("/x", kOpenWrite | kOpenCreate);
        CO_ASSERT_TRUE(fd.ok());
        // A capability spanning another region (kernel-forged here to simulate a confused
        // deputy attempt) is rejected by validation before any transfer.
        const Capability foreign = Capability::Root(2 * kGiB, kPageSize, kPermAllData);
        auto r = co_await g.kernel().SysWrite(g.uproc(), *fd, foreign, 2 * kGiB, 16);
        EXPECT_EQ(r.code(), Code::kErrAccess);
        co_return;
      }),
      "deputy");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(Kernel, NestedForksThreeGenerations) {
  auto kernel = MakeUforkKernel(SmallConfig());
  int depth_reached = 0;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&depth_reached](Guest& g) -> SimTask<void> {
        auto block = g.Malloc(32);
        CO_ASSERT_TRUE(block.ok());
        CO_ASSERT_TRUE(g.StoreAt<uint64_t>(*block, 0, 1111).ok());
        CO_ASSERT_TRUE(g.GotStore(kGotSlotFirstUser, *block).ok());
        auto c1 = co_await g.Fork([&depth_reached](Guest& g1) -> SimTask<void> {
          auto c2 = co_await g1.Fork([&depth_reached](Guest& g2) -> SimTask<void> {
            // Grandchild: the value must have survived two relocation hops.
            auto cap = g2.GotLoad(kGotSlotFirstUser);
            CO_ASSERT_TRUE(cap.ok());
            auto v = g2.LoadAt<uint64_t>(*cap, 0);
            CO_ASSERT_TRUE(v.ok());
            EXPECT_EQ(*v, 1111u);
            depth_reached = 2;
            co_await g2.Exit(0);
          });
          CO_ASSERT_TRUE(c2.ok());
          (void)co_await g1.Wait();
          co_await g1.Exit(0);
        });
        CO_ASSERT_TRUE(c1.ok());
        (void)co_await g.Wait();
      }),
      "gen0");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(depth_reached, 2);
}

TEST(Kernel, ForkStatsPopulated) {
  auto kernel = MakeUforkKernel(SmallConfig());
  ForkStats observed;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&observed](Guest& g) -> SimTask<void> {
        auto child_pid = co_await g.Fork([](Guest& cg) -> SimTask<void> {
          co_await cg.Exit(0);
        });
        CO_ASSERT_TRUE(child_pid.ok());
        observed = g.kernel().FindUproc(*child_pid)->fork_stats;
        (void)co_await g.Wait();
      }),
      "stats");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_GT(observed.latency, 0u);
  EXPECT_GT(observed.pages_mapped, 100u);
  EXPECT_GT(observed.pages_copied_eagerly, 0u) << "GOT + allocator metadata proactive copies";
  EXPECT_GT(observed.caps_relocated_eagerly, 0u) << "allocator bump/free caps + GOT entries";
  EXPECT_GT(observed.registers_relocated, 0u) << "DDC/PCC/CSP at minimum";
}

}  // namespace
}  // namespace ufork
