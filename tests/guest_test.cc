// Tests for the guest runtime: tinyalloc (with metadata in guest memory), guest containers
// (property-tested against a host reference model), and GOT semantics.
#include <gtest/gtest.h>

#include <map>

#include "src/base/rng.h"
#include "src/baseline/system.h"
#include "src/guest/containers.h"
#include "src/guest/guest.h"
#include "src/cheri/compressed_cap.h"
#include "src/guest/tinyalloc.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

KernelConfig GuestConfig() {
  KernelConfig config;
  config.layout.heap_size = 64 * kMiB;  // room for representable-bounds tests
  return config;
}

void RunGuest(const KernelConfig& config, GuestFn fn) {
  auto kernel = MakeUforkKernel(config);
  auto pid = kernel->Spawn(MakeGuestEntry(std::move(fn)), "guest");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(Tinyalloc, AllocationsAreDisjointAndAligned) {
  RunGuest(GuestConfig(), [](Guest& g) -> SimTask<void> {
    std::vector<Capability> blocks;
    for (uint64_t size : {1ULL, 16ULL, 17ULL, 100ULL, 4096ULL}) {
      auto cap = g.Malloc(size);
      CO_ASSERT_OK(cap);
      EXPECT_TRUE(IsAligned(cap->base(), kCapSize));
      EXPECT_EQ(cap->length(), size);
      for (const Capability& other : blocks) {
        EXPECT_TRUE(cap->base() >= other.top() || cap->top() <= other.base())
            << "allocations must not overlap";
      }
      blocks.push_back(*cap);
    }
    co_return;
  });
}

TEST(Tinyalloc, FreeListReuse) {
  RunGuest(GuestConfig(), [](Guest& g) -> SimTask<void> {
    auto a = g.Malloc(256);
    CO_ASSERT_OK(a);
    auto stats0 = tinyalloc::Stats(g);
    CO_ASSERT_OK(stats0);
    CO_ASSERT_OK(g.Free(*a));
    auto b = g.Malloc(256);  // exact-fit reuse
    CO_ASSERT_OK(b);
    EXPECT_EQ(b->base(), a->base());
    auto stats1 = tinyalloc::Stats(g);
    CO_ASSERT_OK(stats1);
    EXPECT_EQ(stats1->bump_used, stats0->bump_used) << "reuse must not grow the arena";
    co_return;
  });
}

TEST(Tinyalloc, DoubleFreeDetected) {
  RunGuest(GuestConfig(), [](Guest& g) -> SimTask<void> {
    auto a = g.Malloc(64);
    CO_ASSERT_OK(a);
    CO_ASSERT_OK(g.Free(*a));
    EXPECT_EQ(g.Free(*a).code(), Code::kErrInval);
    co_return;
  });
}

TEST(Tinyalloc, FreeOfForeignCapabilityRejected) {
  RunGuest(GuestConfig(), [](Guest& g) -> SimTask<void> {
    const Capability bogus = g.ddc().WithBounds(g.base() + g.layout().data_off(), 64);
    EXPECT_EQ(g.Free(bogus).code(), Code::kErrInval);
    EXPECT_EQ(g.Free(Capability::Integer(42)).code(), Code::kErrInval);
    co_return;
  });
}

TEST(Tinyalloc, LargeAllocationsGetRepresentableBounds) {
  RunGuest(GuestConfig(), [](Guest& g) -> SimTask<void> {
    // 20 MB exceeds the exact-bounds mantissa: the allocator must pad/align so the bounds are
    // representable under compression.
    auto big = g.Malloc(20 * kMiB);
    CO_ASSERT_OK(big);
    const RepresentableBounds rb = RoundToRepresentable(big->base(), big->length());
    EXPECT_TRUE(rb.exact) << "large allocation bounds must be exactly representable";
    const Capability round_trip = Decompress(Compress(*big), /*tag=*/true);
    EXPECT_EQ(round_trip.base(), big->base());
    EXPECT_EQ(round_trip.top(), big->top());
    co_return;
  });
}

TEST(Tinyalloc, ExhaustionReportsNoMem) {
  KernelConfig config;
  config.layout.heap_size = 256 * kKiB;
  RunGuest(config, [](Guest& g) -> SimTask<void> {
    Result<Capability> last = g.Malloc(64 * kKiB);
    int allocated = 0;
    while (last.ok() && allocated < 100) {
      ++allocated;
      last = g.Malloc(64 * kKiB);
    }
    EXPECT_EQ(last.code(), Code::kErrNoMem);
    EXPECT_GT(allocated, 1);
    co_return;
  });
}

TEST(Tinyalloc, StatsTrackAllocationsAndFrees) {
  RunGuest(GuestConfig(), [](Guest& g) -> SimTask<void> {
    auto s0 = tinyalloc::Stats(g);
    CO_ASSERT_OK(s0);
    auto a = g.Malloc(100);
    auto b = g.Malloc(200);
    CO_ASSERT_OK(a);
    CO_ASSERT_OK(b);
    CO_ASSERT_OK(g.Free(*a));
    auto s1 = tinyalloc::Stats(g);
    CO_ASSERT_OK(s1);
    EXPECT_EQ(s1->allocations, s0->allocations + 2);
    EXPECT_EQ(s1->frees, s0->frees + 1);
    EXPECT_GT(s1->bytes_in_use, s0->bytes_in_use);
    co_return;
  });
}

// --- GOT -----------------------------------------------------------------------------------

TEST(Got, SlotBoundsEnforced) {
  RunGuest(GuestConfig(), [](Guest& g) -> SimTask<void> {
    const int last_slot = static_cast<int>(g.layout().got_size() / kCapSize) - 1;
    CO_ASSERT_OK(g.GotStore(last_slot, g.ddc()));
    EXPECT_EQ(g.GotStore(last_slot + 1, g.ddc()).code(), Code::kErrInval);
    EXPECT_EQ(g.GotLoad(-1).code(), Code::kErrInval);
    co_return;
  });
}

TEST(Got, RuntimeSlotsPopulatedByCrt) {
  RunGuest(GuestConfig(), [](Guest& g) -> SimTask<void> {
    auto heap_root = g.GotLoad(kGotSlotHeapRoot);
    CO_ASSERT_OK(heap_root);
    EXPECT_TRUE(heap_root->tag());
    EXPECT_EQ(heap_root->base(), g.base() + g.layout().heap_off());
    auto data_seg = g.GotLoad(kGotSlotDataSeg);
    CO_ASSERT_OK(data_seg);
    EXPECT_EQ(data_seg->base(), g.base() + g.layout().data_off());
    co_return;
  });
}

// --- GuestHashMap property test ----------------------------------------------------------------

TEST(GuestHashMapProperty, MatchesHostReferenceModel) {
  RunGuest(GuestConfig(), [](Guest& g) -> SimTask<void> {
    auto map = GuestHashMap::Create(g, 16);  // small bucket count: force chains
    CO_ASSERT_OK(map);
    std::map<std::string, std::vector<std::byte>> reference;
    Rng rng(2026);
    for (int step = 0; step < 800; ++step) {
      const std::string key = "k" + std::to_string(rng.NextBelow(60));
      const uint64_t op = rng.NextBelow(10);
      if (op < 5) {  // put
        std::vector<std::byte> value(1 + rng.NextBelow(300));
        for (auto& byte : value) {
          byte = static_cast<std::byte>(rng.NextU64());
        }
        CO_ASSERT_OK(map->Put(key, value));
        reference[key] = std::move(value);
      } else if (op < 8) {  // get
        auto got = map->Get(key);
        CO_ASSERT_OK(got);
        auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_FALSE(got->has_value());
        } else {
          CO_ASSERT_TRUE(got->has_value());
          EXPECT_EQ(**got, it->second);
        }
      } else {  // erase
        auto erased = map->Erase(key);
        CO_ASSERT_OK(erased);
        EXPECT_EQ(*erased, reference.erase(key) > 0);
      }
      auto size = map->Size();
      CO_ASSERT_OK(size);
      EXPECT_EQ(*size, reference.size());
    }
    // Full scan must visit exactly the reference contents.
    std::map<std::string, uint64_t> visited;
    CO_ASSERT_OK(map->ForEach([&](const std::string& key, const Capability&,
                                  uint64_t len) -> Result<void> {
      visited[key] = len;
      return OkResult();
    }));
    EXPECT_EQ(visited.size(), reference.size());
    for (const auto& [key, value] : reference) {
      CO_ASSERT_TRUE(visited.count(key) == 1);
      EXPECT_EQ(visited[key], value.size());
    }
    co_return;
  });
}

TEST(GuestHashMap, SurvivesForkWithChains) {
  // The container's capability links must all relocate correctly in a forked child, including
  // hash chains (multiple entries per bucket).
  RunGuest(GuestConfig(), [](Guest& g) -> SimTask<void> {
    auto map = GuestHashMap::Create(g, 4);  // heavy chaining
    CO_ASSERT_OK(map);
    for (int i = 0; i < 40; ++i) {
      std::vector<std::byte> value(64, static_cast<std::byte>(i));
      CO_ASSERT_OK(map->Put("key" + std::to_string(i), value));
    }
    CO_ASSERT_OK(g.GotStore(kGotSlotFirstUser, map->table()));
    auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
      auto table = cg.GotLoad(kGotSlotFirstUser);
      CO_ASSERT_OK(table);
      GuestHashMap child_map = GuestHashMap::Attach(cg, *table);
      for (int i = 0; i < 40; ++i) {
        auto got = child_map.Get("key" + std::to_string(i));
        CO_ASSERT_OK(got);
        CO_ASSERT_TRUE(got->has_value());
        EXPECT_EQ(**got, std::vector<std::byte>(64, static_cast<std::byte>(i)));
      }
      co_await cg.Exit(0);
    });
    CO_ASSERT_OK(child);
    auto waited = co_await g.Wait();
    CO_ASSERT_OK(waited);
    EXPECT_EQ(waited->status, 0);
  });
}

}  // namespace
}  // namespace ufork
