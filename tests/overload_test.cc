// Overload-control matrix (DESIGN.md §4.10): frame-pool watermark hysteresis, EAGAIN
// admission rejection, backpressure parking, and per-tenant frame caps.
//
// The watermark tests drive the free-frame count directly (FrameAllocator::Allocate/Release
// from the test body) so every threshold crossing is exact, then probe the controller through
// real fork/spawn syscalls. The controller is armed at runtime via admission().Configure()
// with watermarks derived from the measured steady-state free count — the same calibration
// pattern bench_overload uses.
#include <gtest/gtest.h>

#include <vector>

#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

KernelConfig TinyConfig(LockMode lock_mode) {
  KernelConfig config;
  config.layout.text_size = 32 * kKiB;
  config.layout.rodata_size = 8 * kKiB;
  config.layout.got_size = 4 * kKiB;
  config.layout.data_size = 8 * kKiB;
  config.layout.heap_size = 256 * kKiB;
  config.layout.stack_size = 32 * kKiB;
  config.layout.tls_size = 4 * kKiB;
  config.layout.mmap_size = 64 * kKiB;
  config.lock_mode = lock_mode;
  return config;
}

struct System {
  const char* name;
  std::unique_ptr<Kernel> (*make)(KernelConfig config);
};

const System kSystems[] = {
    {"ufork", [](KernelConfig c) { return MakeUforkKernel(c); }},
    {"mas", [](KernelConfig c) { return MakeMasKernel(c, MasParams{}); }},
    {"vmclone", [](KernelConfig c) { return MakeVmCloneKernel(c, VmCloneParams{}); }},
};

const LockMode kLockModes[] = {LockMode::kBigKernelLock, LockMode::kPerService};

const char* LockModeTag(LockMode mode) {
  return mode == LockMode::kBigKernelLock ? "bkl" : "per-service";
}

SimTask<void> TrivialChild(Guest& cg) { co_await cg.Exit(0); }

// --- watermark hysteresis ----------------------------------------------------------------------

TEST(Overload, WatermarkHysteresisRejectsBelowLowAndRecoversOnlyAboveClear) {
  for (const System& system : kSystems) {
    for (const LockMode mode : kLockModes) {
      SCOPED_TRACE(std::string(system.name) + "/" + LockModeTag(mode));
      auto kernel = system.make(TinyConfig(mode));
      kernel->RegisterProgram("worker", MakeGuestEntry([](Guest& g) -> SimTask<void> {
                                co_await g.Exit(7);
                              }));
      auto pid = kernel->Spawn(
          MakeGuestEntry([](Guest& g) -> SimTask<void> {
            Kernel& k = g.kernel();
            FrameAllocator& fr = k.machine().frames();
            const uint64_t free0 = fr.free_frames();

            OverloadConfig oc;
            oc.enabled = true;
            oc.low_watermark = free0 - 6;
            oc.critical_watermark = 0;
            oc.clear_watermark = free0 - 2;
            oc.max_parked = 0;  // pure-EAGAIN mode: parking is exercised separately
            k.admission().Configure(oc);

            // Above the low watermark: fork and spawn are admitted.
            auto ok_fork = co_await g.Fork(TrivialChild);
            CO_ASSERT_OK(ok_fork);
            CO_ASSERT_OK(co_await g.Wait());

            // Pin 8 frames: free drops below low → REJECTING, both fork and spawn EAGAIN.
            std::vector<FrameId> held;
            for (int i = 0; i < 8; ++i) {
              auto frame = fr.Allocate();
              CO_ASSERT_OK(frame);
              held.push_back(*frame);
            }
            auto rejected_fork = co_await g.Fork(TrivialChild);
            CO_ASSERT_EQ(rejected_fork.code(), Code::kErrAgain);
            auto rejected_spawn = co_await g.SpawnProgram("worker");
            CO_ASSERT_EQ(rejected_spawn.code(), Code::kErrAgain);
            CO_ASSERT_TRUE(k.admission().rejecting());
            CO_ASSERT_EQ(k.stats().admission_trips, 1u);
            CO_ASSERT_EQ(k.stats().admission_rejected, 2u);

            // Hysteresis: back above low but still below clear — REJECTING holds, and the
            // trip counter must not move (no flapping at the threshold).
            for (int i = 0; i < 4; ++i) {
              fr.Release(held.back());
              held.pop_back();
            }
            auto still_rejected = co_await g.Fork(TrivialChild);
            CO_ASSERT_EQ(still_rejected.code(), Code::kErrAgain);
            CO_ASSERT_EQ(k.stats().admission_trips, 1u);
            CO_ASSERT_EQ(k.stats().admission_rejected, 3u);

            // At the clear watermark: admission recovers; the identical fork succeeds.
            for (int i = 0; i < 2; ++i) {
              fr.Release(held.back());
              held.pop_back();
            }
            auto admitted = co_await g.Fork(TrivialChild);
            CO_ASSERT_OK(admitted);
            CO_ASSERT_OK(co_await g.Wait());
            CO_ASSERT_TRUE(!k.admission().rejecting());
            CO_ASSERT_EQ(k.stats().admission_trips, 1u);
            for (const FrameId frame : held) {
              fr.Release(frame);
            }
          }),
          "hysteresis");
      ASSERT_TRUE(pid.ok());
      kernel->Run();
      // Rejected creations never reached the fork backend.
      EXPECT_EQ(kernel->stats().forks, 2u);
      EXPECT_EQ(kernel->LivePids().size(), 0u);
      EXPECT_TRUE(kernel->CheckFrameAccounting().ok());
    }
  }
}

TEST(Overload, BelowCriticalWatermarkRejectsImmediatelyWithoutParking) {
  auto kernel = MakeUforkKernel(TinyConfig(LockMode::kBigKernelLock));
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        Kernel& k = g.kernel();
        FrameAllocator& fr = k.machine().frames();
        const uint64_t free0 = fr.free_frames();

        OverloadConfig oc;
        oc.enabled = true;
        oc.low_watermark = free0 - 4;
        oc.critical_watermark = free0 - 10;
        oc.clear_watermark = free0 - 2;
        oc.max_parked = 4;  // parking allowed — but not below critical
        k.admission().Configure(oc);

        std::vector<FrameId> held;
        for (int i = 0; i < 12; ++i) {
          auto frame = fr.Allocate();
          CO_ASSERT_OK(frame);
          held.push_back(*frame);
        }
        auto rejected = co_await g.Fork(TrivialChild);
        CO_ASSERT_EQ(rejected.code(), Code::kErrAgain);
        CO_ASSERT_EQ(k.admission().parked(), 0u);
        CO_ASSERT_EQ(k.stats().admission_parked, 0u);
        CO_ASSERT_EQ(k.stats().admission_rejected, 1u);

        for (const FrameId frame : held) {
          fr.Release(frame);
        }
        auto admitted = co_await g.Fork(TrivialChild);
        CO_ASSERT_OK(admitted);
        CO_ASSERT_OK(co_await g.Wait());
      }),
      "critical");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(kernel->stats().forks, 1u);
  EXPECT_TRUE(kernel->CheckFrameAccounting().ok());
}

// --- backpressure parking ----------------------------------------------------------------------

TEST(Overload, BackpressureParksForkersAndDrainsWhenFramesFree) {
  for (const System& system : kSystems) {
    SCOPED_TRACE(system.name);
    auto kernel = system.make(TinyConfig(LockMode::kBigKernelLock));
    auto pid = kernel->Spawn(
        MakeGuestEntry([](Guest& g) -> SimTask<void> {
          Kernel& k = g.kernel();
          FrameAllocator& fr = k.machine().frames();

          // Two pipes (one per direction): with a single shared pipe the child's go-read could
          // consume its own just-written ready byte before the parent runs.
          auto ready_pipe = co_await g.Pipe();
          CO_ASSERT_OK(ready_pipe);
          auto go_pipe = co_await g.Pipe();
          CO_ASSERT_OK(go_pipe);
          const int ready_r = ready_pipe->first;
          const int ready_w = ready_pipe->second;
          const int go_r = go_pipe->first;
          const int go_w = go_pipe->second;

          auto child = co_await g.Fork([ready_w, go_r](Guest& cg) -> SimTask<void> {
            auto buf = cg.Malloc(16);
            CO_ASSERT_OK(buf);
            // Touch the buffer page now so the go-read below allocates nothing.
            CO_ASSERT_OK(cg.StoreAt<uint64_t>(*buf, 0, 1));
            CO_ASSERT_OK(co_await cg.Write(ready_w, *buf, 1));
            auto go = co_await cg.Read(go_r, *buf, 1);  // blocks until the parent says go
            CO_ASSERT_OK(go);
            // The pool is now below low: this fork must PARK, then succeed after the drain.
            auto grandchild = co_await cg.Fork(TrivialChild);
            CO_ASSERT_OK(grandchild);
            CO_ASSERT_OK(co_await cg.Wait());
            co_await cg.Exit(0);
          });
          CO_ASSERT_OK(child);

          auto buf = g.Malloc(16);
          CO_ASSERT_OK(buf);
          CO_ASSERT_OK(g.StoreAt<uint64_t>(*buf, 0, 1));
          auto ready = co_await g.Read(ready_r, *buf, 1);
          CO_ASSERT_OK(ready);

          // Steady state with the child alive: calibrate, then starve the pool.
          const uint64_t free1 = fr.free_frames();
          OverloadConfig oc;
          oc.enabled = true;
          oc.low_watermark = free1 - 4;
          oc.critical_watermark = 0;
          oc.clear_watermark = free1 - 2;
          oc.max_parked = 4;
          k.admission().Configure(oc);

          std::vector<FrameId> held;
          for (int i = 0; i < 6; ++i) {
            auto frame = fr.Allocate();
            CO_ASSERT_OK(frame);
            held.push_back(*frame);
          }
          CO_ASSERT_OK(co_await g.Write(go_w, *buf, 1));
          co_await g.Nanosleep(Milliseconds(1));
          CO_ASSERT_EQ(k.admission().parked(), 1u);
          CO_ASSERT_EQ(k.stats().admission_parked, 1u);
          CO_ASSERT_TRUE(k.admission().rejecting());

          // Drain: releasing the pinned frames crosses the clear watermark; the release hook
          // wakes the parked forker, which re-Evaluates and proceeds.
          for (const FrameId frame : held) {
            fr.Release(frame);
          }
          CO_ASSERT_EQ(k.admission().parked(), 0u);
          auto waited = co_await g.Wait();
          CO_ASSERT_OK(waited);
          CO_ASSERT_EQ(waited->status, 0);
          CO_ASSERT_EQ(k.stats().admission_resumed, 1u);
          CO_ASSERT_EQ(k.stats().admission_rejected, 0u);
        }),
        "backpressure");
    ASSERT_TRUE(pid.ok());
    kernel->Run();
    EXPECT_EQ(kernel->stats().forks, 2u) << "parked fork must eventually complete";
    EXPECT_EQ(kernel->LivePids().size(), 0u);
    EXPECT_TRUE(kernel->CheckFrameAccounting().ok());
  }
}

// --- per-tenant frame caps ---------------------------------------------------------------------

TEST(Overload, TenantCapContainsAFrameHogAndTeardownReturnsEveryFrame) {
  for (const System& system : kSystems) {
    SCOPED_TRACE(system.name);
    KernelConfig config = TinyConfig(LockMode::kBigKernelLock);
    config.check_frame_invariants = true;  // tenant billing must not disturb the accounting
    auto kernel = system.make(config);
    auto pid = kernel->Spawn(
        MakeGuestEntry([](Guest& g) -> SimTask<void> {
          Kernel& k = g.kernel();
          FrameAllocator& fr = k.machine().frames();
          fr.SetTenantCap(/*tenant=*/7, /*max_frames=*/8);

          auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
            cg.SetTenant(7);
            FrameAllocator& cfr = cg.kernel().machine().frames();
            // 16 pages cannot fit under an 8-frame cap: ENOMEM, all-or-nothing.
            auto area = co_await cg.MmapAnon(16 * kPageSize);
            CO_ASSERT_EQ(area.code(), Code::kErrNoMem);
            CO_ASSERT_TRUE(cfr.TenantFrames(7) <= 8);
            // A request that fits the remaining budget still succeeds.
            auto small = co_await cg.MmapAnon(2 * kPageSize);
            CO_ASSERT_OK(small);
            CO_ASSERT_OK(cg.Store<uint64_t>(*small, small->base(), 0xFEED));
            co_await cg.Exit(0);
          });
          CO_ASSERT_OK(child);
          auto waited = co_await g.Wait();
          CO_ASSERT_OK(waited);
          CO_ASSERT_EQ(waited->status, 0);

          CO_ASSERT_TRUE(fr.tenant_cap_rejections() >= 1);
          // Teardown handed back every frame the tenant was ever billed for.
          CO_ASSERT_EQ(fr.TenantFrames(7), 0u);
          // The system tenant (the parent) was never throttled.
          auto mine = co_await g.MmapAnon(4 * kPageSize);
          CO_ASSERT_OK(mine);
        }),
        "tenant-cap");
    ASSERT_TRUE(pid.ok());
    kernel->Run();
    EXPECT_EQ(kernel->LivePids().size(), 0u);
    EXPECT_TRUE(kernel->CheckFrameAccounting().ok());
  }
}

}  // namespace
}  // namespace ufork
