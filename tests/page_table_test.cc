// Tests for the 4-level radix page table: map/unmap/protect, range walks across radix node
// boundaries, and node accounting.
#include "src/mem/page_table.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/cheri/capability.h"

namespace ufork {
namespace {

TEST(PageTable, MapLookupUnmap) {
  PageTable pt;
  pt.Map(0x1000, 7, kPteRw);
  const auto pte = pt.Lookup(0x1abc);  // any address within the page
  ASSERT_TRUE(pte.has_value());
  EXPECT_EQ(pte->frame, 7u);
  EXPECT_EQ(pte->flags, static_cast<uint32_t>(kPteRw));
  EXPECT_EQ(pt.mapped_pages(), 1u);
  EXPECT_EQ(pt.Unmap(0x1000), 7u);
  EXPECT_FALSE(pt.Lookup(0x1000).has_value());
  EXPECT_EQ(pt.mapped_pages(), 0u);
}

TEST(PageTable, DistinctPagesAreIndependent) {
  PageTable pt;
  pt.Map(0x1000, 1, kPteRead);
  pt.Map(0x2000, 2, kPteRw);
  EXPECT_EQ(pt.Lookup(0x1000)->frame, 1u);
  EXPECT_EQ(pt.Lookup(0x2000)->frame, 2u);
  EXPECT_FALSE(pt.Lookup(0x3000).has_value());
}

TEST(PageTable, SetFlagsAndRemap) {
  PageTable pt;
  pt.Map(0x5000, 3, kPteRead | kPteCow);
  pt.SetFlags(0x5000, kPteRw);
  EXPECT_EQ(pt.Lookup(0x5000)->flags, static_cast<uint32_t>(kPteRw));
  pt.Remap(0x5000, 9, kPteRead | kPteLoadCapFault);
  EXPECT_EQ(pt.Lookup(0x5000)->frame, 9u);
  EXPECT_EQ(pt.Lookup(0x5000)->flags, static_cast<uint32_t>(kPteRead | kPteLoadCapFault));
}

TEST(PageTable, HighAddressesWork) {
  PageTable pt;
  const uint64_t va = kVaTop - kPageSize;
  pt.Map(va, 11, kPteRead);
  EXPECT_EQ(pt.Lookup(va)->frame, 11u);
}

TEST(PageTable, ForEachMappedVisitsInOrderAcrossLeafBoundaries) {
  PageTable pt;
  // Pages straddling a leaf table boundary (512 pages per leaf = 2 MiB span).
  const uint64_t two_mib = 512 * kPageSize;
  std::vector<uint64_t> vas = {0x1000, two_mib - kPageSize, two_mib, two_mib + kPageSize,
                               8 * two_mib + 5 * kPageSize};
  FrameId f = 1;
  for (uint64_t va : vas) {
    pt.Map(va, f++, kPteRead);
  }
  std::vector<uint64_t> visited;
  pt.ForEachMapped(0, kVaTop, [&](uint64_t va, Pte&) { visited.push_back(va); });
  EXPECT_EQ(visited, vas);
}

TEST(PageTable, ForEachMappedHonoursRange) {
  PageTable pt;
  for (uint64_t i = 0; i < 20; ++i) {
    pt.Map(0x10000 + i * kPageSize, i + 1, kPteRead);
  }
  uint64_t count = 0;
  pt.ForEachMapped(0x10000 + 5 * kPageSize, 0x10000 + 11 * kPageSize,
                   [&](uint64_t, const Pte&) { ++count; });
  EXPECT_EQ(count, 6u);
  EXPECT_EQ(pt.CountMapped(0, kVaTop), 20u);
}

TEST(PageTable, ForEachMappedCanMutateFlags) {
  PageTable pt;
  pt.Map(0x4000, 1, kPteRw);
  pt.Map(0x8000, 2, kPteRw);
  pt.ForEachMapped(0, kVaTop, [](uint64_t, Pte& pte) { pte.flags = kPteRead | kPteCow; });
  EXPECT_EQ(pt.Lookup(0x4000)->flags, static_cast<uint32_t>(kPteRead | kPteCow));
  EXPECT_EQ(pt.Lookup(0x8000)->flags, static_cast<uint32_t>(kPteRead | kPteCow));
}

TEST(PageTable, NodeCountGrowsWithSpread) {
  PageTable pt;
  const uint64_t n0 = pt.node_count();
  pt.Map(0x1000, 1, kPteRead);
  const uint64_t n1 = pt.node_count();
  EXPECT_GT(n1, n0);
  pt.Map(0x2000, 2, kPteRead);  // same leaf: no new nodes
  EXPECT_EQ(pt.node_count(), n1);
  pt.Map(1ULL << 40, 3, kPteRead);  // far away: new subtree
  EXPECT_GT(pt.node_count(), n1);
}

// Property: a randomized sequence of map/unmap operations matches a reference std::map model.
TEST(PageTableProperty, MatchesReferenceModel) {
  PageTable pt;
  std::map<uint64_t, Pte> model;
  Rng rng(99);
  for (int step = 0; step < 5000; ++step) {
    const uint64_t va = rng.NextBelow(1ULL << 30) & ~(kPageSize - 1);
    const bool mapped = model.count(va) != 0;
    if (!mapped && rng.NextBelow(100) < 60) {
      const FrameId frame = 1 + rng.NextBelow(1000);
      const uint32_t flags = static_cast<uint32_t>(1 + rng.NextBelow(31));
      pt.Map(va, frame, flags);
      model[va] = Pte{frame, flags};
    } else if (mapped) {
      EXPECT_EQ(pt.Unmap(va), model[va].frame);
      model.erase(va);
    }
  }
  EXPECT_EQ(pt.mapped_pages(), model.size());
  std::vector<uint64_t> visited;
  pt.ForEachMapped(0, kVaTop, [&](uint64_t va, const Pte& pte) {
    visited.push_back(va);
    ASSERT_TRUE(model.count(va));
    EXPECT_EQ(pte.frame, model[va].frame);
    EXPECT_EQ(pte.flags, model[va].flags);
  });
  EXPECT_EQ(visited.size(), model.size());
}

}  // namespace
}  // namespace ufork
