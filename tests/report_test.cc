// Tests for the kernel introspection reports and the isolation-policy matrix (TEST_P over the
// three isolation levels, checking exactly which protections each level enables).
#include <gtest/gtest.h>

#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "src/kernel/proc_report.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

TEST(ProcReport, TablesContainTheExpectedRows) {
  KernelConfig config;
  config.layout.heap_size = 1 * kMiB;
  auto kernel = MakeUforkKernel(config);
  std::string table;
  std::string memmap;
  std::string summary;
  auto pid = kernel->Spawn(
      MakeGuestEntry([&](Guest& g) -> SimTask<void> {
        auto block = g.Malloc(64);
        CO_ASSERT_OK(block);
        CO_ASSERT_OK(g.GotStore(kGotSlotFirstUser, *block));
        GuestFn child_fn = [&](Guest& cg) -> SimTask<void> {
          // Snapshot the reports while parent + child coexist.
          table = ProcessTableReport(cg.kernel());
          memmap = MemoryMapReport(cg.kernel(), cg.pid());
          summary = KernelSummaryReport(cg.kernel());
          co_await cg.Exit(0);
        };
        auto child = co_await g.Fork(std::move(child_fn));
        CO_ASSERT_OK(child);
        (void)co_await g.Wait();
      }),
      "reportee");
  ASSERT_TRUE(pid.ok());
  kernel->Run();

  EXPECT_NE(table.find("PID"), std::string::npos);
  EXPECT_NE(table.find("reportee"), std::string::npos);
  EXPECT_NE(table.find("reportee+"), std::string::npos) << "the forked child must be listed";
  EXPECT_NE(memmap.find("heap"), std::string::npos);
  EXPECT_NE(memmap.find("COPA-ARMED"), std::string::npos);
  EXPECT_NE(summary.find("forks=1"), std::string::npos);
  EXPECT_NE(summary.find("uFork"), std::string::npos);
  EXPECT_EQ(MemoryMapReport(*kernel, 999), "(no such process)\n");
}

// --- isolation matrix -------------------------------------------------------------------------

class IsolationMatrixTest : public ::testing::TestWithParam<IsolationLevel> {};

INSTANTIATE_TEST_SUITE_P(Levels, IsolationMatrixTest,
                         ::testing::Values(IsolationLevel::kNone, IsolationLevel::kFault,
                                           IsolationLevel::kFull),
                         [](const ::testing::TestParamInfo<IsolationLevel>& param_info) {
                           return IsolationLevelName(param_info.param);
                         });

TEST_P(IsolationMatrixTest, PolicyBitsMatchTheLevel) {
  const IsolationPolicy policy = IsolationPolicy::FromLevel(GetParam());
  switch (GetParam()) {
    case IsolationLevel::kNone:
      EXPECT_FALSE(policy.confine_caps);
      EXPECT_FALSE(policy.validate_args);
      EXPECT_FALSE(policy.tocttou_protect);
      break;
    case IsolationLevel::kFault:
      EXPECT_TRUE(policy.confine_caps);
      EXPECT_TRUE(policy.validate_args);
      EXPECT_FALSE(policy.tocttou_protect);
      break;
    case IsolationLevel::kFull:
      EXPECT_TRUE(policy.confine_caps);
      EXPECT_TRUE(policy.validate_args);
      EXPECT_TRUE(policy.tocttou_protect);
      break;
  }
}

TEST_P(IsolationMatrixTest, CrossProcessReadMatchesPolicy) {
  KernelConfig config;
  config.layout.heap_size = 1 * kMiB;
  config.isolation = GetParam();
  auto kernel = MakeUforkKernel(config);
  const bool confined = IsolationPolicy::FromLevel(GetParam()).confine_caps;
  auto pid = kernel->Spawn(
      MakeGuestEntry([confined](Guest& g) -> SimTask<void> {
        auto secret = g.Malloc(16);
        CO_ASSERT_OK(secret);
        CO_ASSERT_OK(g.StoreAt<uint64_t>(*secret, 0, 77));
        const uint64_t secret_va = secret->base();
        auto child = co_await g.Fork([confined, secret_va](Guest& cg) -> SimTask<void> {
          auto peek = cg.Load<uint64_t>(cg.ddc(), secret_va);
          if (confined) {
            EXPECT_EQ(peek.code(), Code::kFaultBounds);
          } else {
            CO_ASSERT_OK(peek);
            EXPECT_EQ(*peek, 77u);
          }
          co_await cg.Exit(0);
        });
        CO_ASSERT_OK(child);
        (void)co_await g.Wait();
      }),
      "matrix");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST_P(IsolationMatrixTest, TocttouCopiesOnlyAtFullIsolation) {
  KernelConfig config;
  config.layout.heap_size = 1 * kMiB;
  config.isolation = GetParam();
  auto kernel = MakeUforkKernel(config);
  auto pid = kernel->Spawn(
      MakeGuestEntry([](Guest& g) -> SimTask<void> {
        auto fd = co_await g.Open("/f", kOpenWrite | kOpenCreate);
        CO_ASSERT_OK(fd);
        auto buf = g.PlaceString("payload");
        CO_ASSERT_OK(buf);
        CO_ASSERT_OK(co_await g.Write(*fd, *buf, 7));
        co_return;
      }),
      "tocttou");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  const bool protects = IsolationPolicy::FromLevel(GetParam()).tocttou_protect;
  if (protects) {
    EXPECT_GT(kernel->stats().tocttou_copies, 0u);
  } else {
    EXPECT_EQ(kernel->stats().tocttou_copies, 0u);
  }
}

TEST(IsolationCost, LevelsArePricedInOrder) {
  // Same workload, rising isolation: virtual completion time must be monotone.
  auto run = [](IsolationLevel level) {
    KernelConfig config;
    config.layout.heap_size = 1 * kMiB;
    config.isolation = level;
    auto kernel = MakeUforkKernel(config);
    auto pid = kernel->Spawn(
        MakeGuestEntry([](Guest& g) -> SimTask<void> {
          auto fd = co_await g.Open("/w", kOpenWrite | kOpenCreate);
          CO_ASSERT_OK(fd);
          auto buf = g.Malloc(4096);
          CO_ASSERT_OK(buf);
          for (int i = 0; i < 50; ++i) {
            CO_ASSERT_OK(co_await g.Write(*fd, *buf, 4096));
          }
          co_return;
        }),
        "cost");
    UF_CHECK(pid.ok());
    kernel->Run();
    return kernel->sched().CompletionTime();
  };
  const Cycles none = run(IsolationLevel::kNone);
  const Cycles fault = run(IsolationLevel::kFault);
  const Cycles full = run(IsolationLevel::kFull);
  EXPECT_LT(none, fault);
  EXPECT_LT(fault, full);
}

}  // namespace
}  // namespace ufork
