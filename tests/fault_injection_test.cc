// Unit tests for the deterministic fault-injection registry (DESIGN.md §4.9) and its wiring
// into the memory layer. The contract under test: every failure schedule is a pure function of
// (site, policy, seed); an injected failure leaves the allocator it hit exactly as it was; and
// a disarmed registry is observationally free (hits are not even counted).
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "src/base/fault_injection.h"
#include "src/base/units.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"

namespace ufork {
namespace {

// --- policy grammar ----------------------------------------------------------------------------

TEST(FaultPolicy, ParsesEveryPolicyKind) {
  auto nth = FaultPolicy::Parse("nth=3");
  ASSERT_TRUE(nth.ok());
  EXPECT_EQ(nth->kind, FaultPolicy::Kind::kNth);
  EXPECT_EQ(nth->n, 3u);

  auto after = FaultPolicy::Parse("after=10");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->kind, FaultPolicy::Kind::kAfterBudget);
  EXPECT_EQ(after->n, 10u);

  auto prob = FaultPolicy::Parse("prob=0.05");
  ASSERT_TRUE(prob.ok());
  EXPECT_EQ(prob->kind, FaultPolicy::Kind::kProbabilistic);
  EXPECT_DOUBLE_EQ(prob->p, 0.05);

  auto oneshot = FaultPolicy::Parse("oneshot");
  ASSERT_TRUE(oneshot.ok());
  EXPECT_EQ(oneshot->kind, FaultPolicy::Kind::kOneShot);
}

TEST(FaultPolicy, RejectsMalformedSpecs) {
  EXPECT_EQ(FaultPolicy::Parse("bogus").code(), Code::kErrInval);
  EXPECT_EQ(FaultPolicy::Parse("foo=3").code(), Code::kErrInval);
  EXPECT_EQ(FaultPolicy::Parse("nth=").code(), Code::kErrInval);
  EXPECT_EQ(FaultPolicy::Parse("nth=x").code(), Code::kErrInval);
  EXPECT_EQ(FaultPolicy::Parse("nth=0").code(), Code::kErrInval) << "nth is 1-based";
  EXPECT_EQ(FaultPolicy::Parse("nth=3trailing").code(), Code::kErrInval);
  EXPECT_EQ(FaultPolicy::Parse("prob=1.5").code(), Code::kErrInval);
  EXPECT_EQ(FaultPolicy::Parse("prob=-0.5").code(), Code::kErrInval);
}

TEST(FaultSiteNames, AreStableIdentifiers) {
  EXPECT_STREQ(FaultSiteName(FaultSite::kFrameAlloc), "frame-alloc");
  EXPECT_STREQ(FaultSiteName(FaultSite::kCompactRelocate), "compact-relocate");
  EXPECT_STREQ(FaultSiteName(FaultSite::kVfsGrow), "vfs-grow");
}

// --- schedule semantics ------------------------------------------------------------------------

TEST(FaultInjector, DisarmedRegistryCountsNothing) {
  FaultInjector injector;
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(injector.ShouldFail(FaultSite::kFrameAlloc));
  }
  EXPECT_EQ(injector.hits(FaultSite::kFrameAlloc), 0u);
  EXPECT_EQ(injector.total_failures(), 0u);
  EXPECT_FALSE(injector.any_armed());
}

TEST(FaultInjector, NthFailsExactlyOnce) {
  FaultInjector injector;
  injector.Arm(FaultSite::kFrameAlloc, FaultPolicy::Nth(3));
  std::vector<bool> observed;
  for (int i = 0; i < 5; ++i) {
    observed.push_back(injector.ShouldFail(FaultSite::kFrameAlloc));
  }
  EXPECT_EQ(observed, (std::vector<bool>{false, false, true, false, false}));
  EXPECT_EQ(injector.hits(FaultSite::kFrameAlloc), 5u);
  EXPECT_EQ(injector.failures(FaultSite::kFrameAlloc), 1u);
  EXPECT_TRUE(injector.armed(FaultSite::kFrameAlloc));
}

TEST(FaultInjector, AfterBudgetFailsEveryHitPastTheBudget) {
  FaultInjector injector;
  injector.Arm(FaultSite::kRegionGrant, FaultPolicy::AfterBudget(2));
  std::vector<bool> observed;
  for (int i = 0; i < 5; ++i) {
    observed.push_back(injector.ShouldFail(FaultSite::kRegionGrant));
  }
  EXPECT_EQ(observed, (std::vector<bool>{false, false, true, true, true}));
  EXPECT_EQ(injector.failures(FaultSite::kRegionGrant), 3u);
}

TEST(FaultInjector, OneShotFiresThenDisarms) {
  FaultInjector injector;
  injector.Arm(FaultSite::kPipeReserve, FaultPolicy::OneShot());
  EXPECT_TRUE(injector.ShouldFail(FaultSite::kPipeReserve));
  EXPECT_FALSE(injector.armed(FaultSite::kPipeReserve));
  EXPECT_FALSE(injector.any_armed());
  // Disarmed again: the next hit is not even counted.
  EXPECT_FALSE(injector.ShouldFail(FaultSite::kPipeReserve));
  EXPECT_EQ(injector.hits(FaultSite::kPipeReserve), 1u);
  EXPECT_EQ(injector.failures(FaultSite::kPipeReserve), 1u);
}

TEST(FaultInjector, ProbabilisticScheduleReplaysFromTheSeed) {
  constexpr uint64_t kSeed = 42;
  constexpr int kDraws = 256;
  const auto draw = [&](FaultSite site) {
    FaultInjector injector;
    injector.Arm(site, FaultPolicy::Probabilistic(0.5), kSeed);
    std::vector<bool> observed;
    for (int i = 0; i < kDraws; ++i) {
      observed.push_back(injector.ShouldFail(site));
    }
    return observed;
  };
  const auto first = draw(FaultSite::kFrameAlloc);
  EXPECT_EQ(first, draw(FaultSite::kFrameAlloc)) << "same (site, seed) must replay exactly";
  // One master seed yields an independent stream per site.
  EXPECT_NE(first, draw(FaultSite::kMqGrow));
}

TEST(FaultInjector, ProbabilityExtremesAreDegenerate) {
  FaultInjector injector;
  injector.Arm(FaultSite::kVfsGrow, FaultPolicy::Probabilistic(0.0), 7);
  injector.Arm(FaultSite::kPipeGrow, FaultPolicy::Probabilistic(1.0), 7);
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(injector.ShouldFail(FaultSite::kVfsGrow));
    EXPECT_TRUE(injector.ShouldFail(FaultSite::kPipeGrow));
  }
}

TEST(FaultInjector, RearmingResetsCountersAndArmAllCoversEverySite) {
  FaultInjector injector;
  injector.Arm(FaultSite::kFrameAlloc, FaultPolicy::Nth(1));
  EXPECT_TRUE(injector.ShouldFail(FaultSite::kFrameAlloc));
  injector.Arm(FaultSite::kFrameAlloc, FaultPolicy::Nth(1));
  EXPECT_EQ(injector.hits(FaultSite::kFrameAlloc), 0u) << "Arm starts a fresh schedule";

  injector.ArmAll(FaultPolicy::OneShot(), 9);
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    EXPECT_TRUE(injector.armed(static_cast<FaultSite>(i)));
  }
  injector.DisarmAll();
  EXPECT_FALSE(injector.any_armed());
}

// --- frame allocator wiring --------------------------------------------------------------------

TEST(FrameAllocatorInjection, SingleAllocationFailsOnSchedule) {
  FrameAllocator frames(/*max_frames=*/8);
  FaultInjector injector;
  frames.set_fault_injector(&injector);
  injector.Arm(FaultSite::kFrameAlloc, FaultPolicy::Nth(2));

  ASSERT_TRUE(frames.Allocate().ok());
  auto failed = frames.Allocate();
  EXPECT_EQ(failed.code(), Code::kErrNoMem);
  EXPECT_TRUE(frames.Allocate().ok());
  EXPECT_EQ(frames.frames_in_use(), 2u);
}

TEST(FrameAllocatorInjection, BatchFailureAllocatesNothing) {
  FrameAllocator frames(/*max_frames=*/8);
  FaultInjector injector;
  frames.set_fault_injector(&injector);
  std::array<FrameId, 4> out{};

  injector.Arm(FaultSite::kFrameBatch, FaultPolicy::OneShot());
  EXPECT_EQ(frames.AllocateForCopy(std::span(out)).code(), Code::kErrNoMem);
  EXPECT_EQ(frames.frames_in_use(), 0u);
  EXPECT_EQ(frames.total_allocations(), 0u);

  // Disarmed (oneshot): the identical call succeeds in full.
  ASSERT_TRUE(frames.AllocateForCopy(std::span(out)).ok());
  EXPECT_EQ(frames.frames_in_use(), 4u);
}

TEST(FrameAllocatorInjection, ExhaustedBatchRollsBackPartialAllocations) {
  FrameAllocator frames(/*max_frames=*/4);
  auto a = frames.Allocate();
  auto b = frames.Allocate();
  ASSERT_TRUE(a.ok() && b.ok());

  // Room for 2, batch of 4: the two frames handed out mid-batch must come back.
  std::array<FrameId, 4> big{};
  EXPECT_EQ(frames.AllocateForCopy(std::span(big)).code(), Code::kErrNoMem);
  EXPECT_EQ(frames.frames_in_use(), 2u);

  std::array<FrameId, 2> fits{};
  EXPECT_TRUE(frames.AllocateForCopy(std::span(fits)).ok());
  EXPECT_EQ(frames.frames_in_use(), 4u);
}

// --- address-space wiring ----------------------------------------------------------------------

TEST(AddressSpaceInjection, RegionGrantAndCompactTargetFailOnSchedule) {
  AddressSpace as(/*lo=*/1 * kMiB, /*hi=*/9 * kMiB);
  FaultInjector injector;
  as.set_fault_injector(&injector);

  injector.Arm(FaultSite::kRegionGrant, FaultPolicy::OneShot());
  const auto before = as.Stats();
  EXPECT_EQ(as.AllocateRegion(1 * kMiB, kPageSize).code(), Code::kErrNoMem);
  EXPECT_EQ(as.Stats().region_count, before.region_count);
  EXPECT_EQ(as.Stats().free_bytes, before.free_bytes);

  auto granted = as.AllocateRegion(1 * kMiB, kPageSize);
  ASSERT_TRUE(granted.ok());

  injector.Arm(FaultSite::kCompactTarget, FaultPolicy::OneShot());
  EXPECT_EQ(as.AllocateRegionAt(*granted + 1 * kMiB, 1 * kMiB).code(), Code::kErrNoSpc);
  EXPECT_TRUE(as.AllocateRegionAt(*granted + 1 * kMiB, 1 * kMiB).ok());
}

}  // namespace
}  // namespace ufork
