// Adaptive fault-around (DESIGN.md §4.8): window scanning, the adaptive controller, and the
// end-to-end storm behaviour of all three systems.
//
// The page-accounting invariant checked throughout:
//
//   faults_taken + pages_resolved_by_faultaround == pages_copied_on_fault +
//                                                   pages_reclaimed_in_place
//
// i.e. every resolved page was reached either by its own trap or by a window extension, and
// ended in exactly one of the two resolution outcomes (copy-out or last-sharer reclaim).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "src/kernel/fault_around.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

KernelConfig StormConfig(ForkStrategy strategy, uint32_t max_window, bool adaptive) {
  KernelConfig config;
  config.layout.text_size = 32 * kKiB;
  config.layout.rodata_size = 8 * kKiB;
  config.layout.got_size = 4 * kKiB;
  config.layout.data_size = 8 * kKiB;
  config.layout.heap_size = 1 * kMiB;
  config.layout.stack_size = 32 * kKiB;
  config.layout.tls_size = 4 * kKiB;
  config.layout.mmap_size = 64 * kKiB;
  config.strategy = strategy;
  config.fault_around.max_window = max_window;
  config.fault_around.adaptive = adaptive;
  return config;
}

struct StormRun {
  KernelStats stats;
  Cycles completion = 0;
  uint64_t cow_faults = 0;
  uint64_t cap_load_faults = 0;
};

StormRun RunStorm(std::unique_ptr<Kernel> kernel, GuestFn main_fn) {
  StormRun run;
  auto pid = kernel->Spawn(MakeGuestEntry(std::move(main_fn)), "storm-main");
  UF_CHECK(pid.ok());
  kernel->Run();
  run.completion = kernel->sched().CompletionTime();
  run.stats = kernel->stats();
  run.cow_faults = kernel->machine().cow_faults();
  run.cap_load_faults = kernel->machine().cap_load_faults();
  return run;
}

void ExpectPageAccounting(const KernelStats& stats) {
  EXPECT_EQ(stats.faults_taken + stats.pages_resolved_by_faultaround,
            stats.pages_copied_on_fault + stats.pages_reclaimed_in_place);
}

// Parent publishes a pre-filled heap buffer through the GOT, forks, waits; the child runs
// `storm` against the (now CoW/CoA-pending) buffer and exits.
GuestFn MakeForkStormMain(uint64_t buffer_bytes, GuestFn storm) {
  return [buffer_bytes, storm = std::move(storm)](Guest& g) -> SimTask<void> {
    auto buf = g.Malloc(buffer_bytes);
    CO_ASSERT_OK(buf);
    std::vector<std::byte> fill(buffer_bytes, std::byte{0xa5});
    CO_ASSERT_OK(g.WriteBytes(*buf, buf->address(), fill));
    CO_ASSERT_OK(g.GotStore(kGotSlotFirstUser, *buf));
    GuestFn child_fn = storm;
    auto child = co_await g.Fork(std::move(child_fn));
    CO_ASSERT_OK(child);
    auto waited = co_await g.Wait();
    CO_ASSERT_OK(waited);
    CO_ASSERT_EQ(waited->status, 0);
  };
}

// One bulk write spanning the whole buffer: the access span alone should size the window.
GuestFn BulkWriteStorm(uint64_t buffer_bytes) {
  return [buffer_bytes](Guest& cg) -> SimTask<void> {
    auto cap = cg.GotLoad(kGotSlotFirstUser);
    CO_ASSERT_OK(cap);
    std::vector<std::byte> data(buffer_bytes, std::byte{0x5a});
    CO_ASSERT_OK(cg.WriteBytes(*cap, cap->address(), data));
    co_await cg.Exit(0);
  };
}

// Page-at-a-time sequential writes: spans never exceed one page, so only the adaptive
// controller (grow on adjacency) can batch the storm.
GuestFn PagedWriteStorm(uint64_t buffer_bytes) {
  return [buffer_bytes](Guest& cg) -> SimTask<void> {
    auto cap = cg.GotLoad(kGotSlotFirstUser);
    CO_ASSERT_OK(cap);
    std::vector<std::byte> data(kPageSize, std::byte{0x33});
    for (uint64_t off = 0; off < buffer_bytes; off += kPageSize) {
      const uint64_t chunk = std::min<uint64_t>(kPageSize, buffer_bytes - off);
      CO_ASSERT_OK(cg.WriteBytes(
          *cap, cap->address() + off, std::span<const std::byte>(data.data(), chunk)));
    }
    co_await cg.Exit(0);
  };
}

// One bulk read spanning the whole buffer (CoA: reads fault too).
GuestFn BulkReadStorm(uint64_t buffer_bytes) {
  return [buffer_bytes](Guest& cg) -> SimTask<void> {
    auto cap = cg.GotLoad(kGotSlotFirstUser);
    CO_ASSERT_OK(cap);
    std::vector<std::byte> data(buffer_bytes);
    CO_ASSERT_OK(cg.ReadBytes(*cap, cap->address(), data));
    for (const std::byte b : data) {
      CO_ASSERT_EQ(static_cast<int>(b), 0xa5);
    }
    co_await cg.Exit(0);
  };
}

// --- window matrix: strategies x window configs ------------------------------------------------

struct MatrixCase {
  ForkStrategy strategy;
  bool bulk;  // bulk span storm vs page-at-a-time storm
};

class FaultAroundMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(FaultAroundMatrixTest, UforkWindowedStormMatchesSinglePage) {
  const MatrixCase& p = GetParam();
  // Paged storms need to be sustained for adaptivity to win: the final window can overrun the
  // buffer by up to max_window-1 speculative copies (~1450 cycles each), which a short storm's
  // trap savings (~510 cycles per avoided trap) cannot cover. Bulk storms are span-sized and
  // never overrun.
  const uint64_t kBytes = (p.bulk ? 32 : 128) * kPageSize;
  GuestFn storm = p.bulk ? BulkWriteStorm(kBytes) : PagedWriteStorm(kBytes);
  const StormRun w1 = RunStorm(MakeUforkKernel(StormConfig(p.strategy, 1, false)),
                               MakeForkStormMain(kBytes, storm));
  const StormRun fa = RunStorm(MakeUforkKernel(StormConfig(p.strategy, 16, true)),
                               MakeForkStormMain(kBytes, storm));
  ExpectPageAccounting(w1.stats);
  ExpectPageAccounting(fa.stats);
  // window=1 must behave exactly like the pre-fault-around resolver.
  EXPECT_EQ(w1.stats.pages_resolved_by_faultaround, 0u);
  EXPECT_EQ(w1.stats.speculative_pages_wasted, 0u);
  EXPECT_EQ(w1.stats.faults_taken, w1.cow_faults + w1.cap_load_faults);
  // Fault-around batches the storm: fewer traps, same or more pages resolved (overrun pages
  // are speculative and must be accounted as waste), and a cheaper virtual completion.
  EXPECT_LT(fa.stats.faults_taken, w1.stats.faults_taken);
  EXPECT_GT(fa.stats.pages_resolved_by_faultaround, 0u);
  EXPECT_EQ(fa.stats.pages_copied_on_fault,
            w1.stats.pages_copied_on_fault + fa.stats.speculative_pages_wasted);
  EXPECT_LT(fa.completion, w1.completion);
  // Relocation coverage never shrinks: every page the single-page run relocated is still
  // relocated (speculative pages may add more).
  EXPECT_GE(fa.stats.caps_relocated_on_fault, w1.stats.caps_relocated_on_fault);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, FaultAroundMatrixTest,
    ::testing::Values(MatrixCase{ForkStrategy::kCopa, true},
                      MatrixCase{ForkStrategy::kCopa, false},
                      MatrixCase{ForkStrategy::kCoa, true},
                      MatrixCase{ForkStrategy::kCoa, false},
                      MatrixCase{ForkStrategy::kUnsafeCow, true},
                      MatrixCase{ForkStrategy::kUnsafeCow, false}),
    [](const ::testing::TestParamInfo<MatrixCase>& tpi) {
      std::string name = ForkStrategyName(tpi.param.strategy);
      name += tpi.param.bulk ? "Bulk" : "Paged";
      return name;
    });

TEST(FaultAround, CoaReadStormIsWindowed) {
  const uint64_t kBytes = 16 * kPageSize;
  const StormRun w1 = RunStorm(MakeUforkKernel(StormConfig(ForkStrategy::kCoa, 1, false)),
                               MakeForkStormMain(kBytes, BulkReadStorm(kBytes)));
  const StormRun fa = RunStorm(MakeUforkKernel(StormConfig(ForkStrategy::kCoa, 16, true)),
                               MakeForkStormMain(kBytes, BulkReadStorm(kBytes)));
  ExpectPageAccounting(w1.stats);
  ExpectPageAccounting(fa.stats);
  EXPECT_LT(fa.stats.faults_taken, w1.stats.faults_taken);
  EXPECT_LT(fa.completion, w1.completion);
}

TEST(FaultAround, MasWindowedStorm) {
  const uint64_t kBytes = 32 * kPageSize;
  const StormRun w1 = RunStorm(MakeMasKernel(StormConfig(ForkStrategy::kCopa, 1, false)),
                               MakeForkStormMain(kBytes, BulkWriteStorm(kBytes)));
  const StormRun fa = RunStorm(MakeMasKernel(StormConfig(ForkStrategy::kCopa, 16, true)),
                               MakeForkStormMain(kBytes, BulkWriteStorm(kBytes)));
  ExpectPageAccounting(w1.stats);
  ExpectPageAccounting(fa.stats);
  EXPECT_EQ(w1.stats.pages_resolved_by_faultaround, 0u);
  EXPECT_LT(fa.stats.faults_taken, w1.stats.faults_taken);
  EXPECT_EQ(fa.stats.pages_copied_on_fault,
            w1.stats.pages_copied_on_fault + fa.stats.speculative_pages_wasted);
  EXPECT_LT(fa.completion, w1.completion);
}

TEST(FaultAround, VmCloneHasNoFaultsToBatch) {
  const uint64_t kBytes = 8 * kPageSize;
  for (const uint32_t window : {1u, 16u}) {
    const StormRun run =
        RunStorm(MakeVmCloneKernel(StormConfig(ForkStrategy::kCopa, window, true)),
                 MakeForkStormMain(kBytes, BulkWriteStorm(kBytes)));
    ExpectPageAccounting(run.stats);
    EXPECT_EQ(run.stats.faults_taken, 0u);
    EXPECT_EQ(run.stats.pages_resolved_by_faultaround, 0u);
    EXPECT_EQ(run.stats.speculative_pages_wasted, 0u);
  }
}

// --- last-sharer reclaim-in-place ---------------------------------------------------------------

// The parent rewrites the buffer right after fork (copying its side out and dropping the
// shared refcount to 1); the child then writes the same pages and must take the
// reclaim-in-place path — no frame allocation, no copy, counted as pages_reclaimed_in_place.
GuestFn MakeReclaimMain(uint64_t buffer_bytes) {
  return [buffer_bytes](Guest& g) -> SimTask<void> {
    auto buf = g.Malloc(buffer_bytes);
    CO_ASSERT_OK(buf);
    std::vector<std::byte> fill(buffer_bytes, std::byte{0x11});
    CO_ASSERT_OK(g.WriteBytes(*buf, buf->address(), fill));
    CO_ASSERT_OK(g.GotStore(kGotSlotFirstUser, *buf));
    GuestFn child_fn = BulkWriteStorm(buffer_bytes);
    auto child = co_await g.Fork(std::move(child_fn));
    CO_ASSERT_OK(child);
    // Runs before the child is scheduled (no suspension point until Wait): the parent's CoW
    // copies leave the child as last sharer of the original frames.
    std::vector<std::byte> update(buffer_bytes, std::byte{0x22});
    CO_ASSERT_OK(g.WriteBytes(*buf, buf->address(), update));
    auto waited = co_await g.Wait();
    CO_ASSERT_OK(waited);
    CO_ASSERT_EQ(waited->status, 0);
  };
}

TEST(FaultAround, LastSharerReclaimInPlaceIsWindowed) {
  const uint64_t kBytes = 16 * kPageSize;
  for (const bool mas : {false, true}) {
    const StormRun w1 =
        mas ? RunStorm(MakeMasKernel(StormConfig(ForkStrategy::kCopa, 1, false)),
                       MakeReclaimMain(kBytes))
            : RunStorm(MakeUforkKernel(StormConfig(ForkStrategy::kCopa, 1, false)),
                       MakeReclaimMain(kBytes));
    const StormRun fa =
        mas ? RunStorm(MakeMasKernel(StormConfig(ForkStrategy::kCopa, 16, true)),
                       MakeReclaimMain(kBytes))
            : RunStorm(MakeUforkKernel(StormConfig(ForkStrategy::kCopa, 16, true)),
                       MakeReclaimMain(kBytes));
    ExpectPageAccounting(w1.stats);
    ExpectPageAccounting(fa.stats);
    // Whoever writes second finds refcount 1 and reclaims in place (satellite: this path used
    // to be invisible in the stats).
    EXPECT_GE(w1.stats.pages_reclaimed_in_place, kBytes / kPageSize);
    EXPECT_GE(fa.stats.pages_reclaimed_in_place, kBytes / kPageSize);
    EXPECT_LT(fa.stats.faults_taken, w1.stats.faults_taken);
    EXPECT_LT(fa.completion, w1.completion);
  }
}

// --- CoPA capability-load storm -----------------------------------------------------------------

TEST(FaultAround, CopaCapLoadStormIsWindowed) {
  const uint64_t kPages = 12;
  GuestFn main_fn = [](Guest& g) -> SimTask<void> {
    auto buf = g.Malloc(kPages * kPageSize);
    CO_ASSERT_OK(buf);
    // A tagged capability at the head of every page: each page's first load is a CoPA fault.
    for (uint64_t p = 0; p < kPages; ++p) {
      CO_ASSERT_OK(g.StoreCap(*buf, buf->address() + p * kPageSize, *buf));
    }
    CO_ASSERT_OK(g.GotStore(kGotSlotFirstUser, *buf));
    GuestFn child_fn = [](Guest& cg) -> SimTask<void> {
      auto cap = cg.GotLoad(kGotSlotFirstUser);
      CO_ASSERT_OK(cap);
      for (uint64_t p = 0; p < kPages; ++p) {
        auto loaded = cg.LoadCap(*cap, cap->address() + p * kPageSize);
        CO_ASSERT_OK(loaded);
        CO_ASSERT_TRUE(loaded->tag());
      }
      co_await cg.Exit(0);
    };
    auto child = co_await g.Fork(std::move(child_fn));
    CO_ASSERT_OK(child);
    auto waited = co_await g.Wait();
    CO_ASSERT_OK(waited);
    CO_ASSERT_EQ(waited->status, 0);
  };
  const StormRun w1 =
      RunStorm(MakeUforkKernel(StormConfig(ForkStrategy::kCopa, 1, false)), main_fn);
  const StormRun fa =
      RunStorm(MakeUforkKernel(StormConfig(ForkStrategy::kCopa, 16, true)), main_fn);
  ExpectPageAccounting(w1.stats);
  ExpectPageAccounting(fa.stats);
  EXPECT_GT(w1.cap_load_faults, 0u);
  EXPECT_LT(fa.cap_load_faults, w1.cap_load_faults);
  EXPECT_LT(fa.stats.faults_taken, w1.stats.faults_taken);
  EXPECT_GE(fa.stats.caps_relocated_on_fault, w1.stats.caps_relocated_on_fault);
}

// --- unit tests of the scanner and controller ---------------------------------------------------

// Runs `body` inside a live μprocess so it can poke PTEs and call the fault-around helpers
// directly against real kernel state.
void RunInGuest(Kernel& kernel, std::function<SimTask<void>(Guest&)> body) {
  bool ran = false;
  GuestFn main_fn = [&ran, body = std::move(body)](Guest& g) -> SimTask<void> {
    co_await body(g);
    ran = true;
  };
  auto pid = kernel.Spawn(MakeGuestEntry(std::move(main_fn)), "fa-unit");
  ASSERT_TRUE(pid.ok());
  kernel.Run();
  EXPECT_TRUE(ran);
}

TEST(FaultAroundScanTest, ClipsAtSegmentBoundary) {
  auto kernel = MakeUforkKernel(StormConfig(ForkStrategy::kCopa, 16, true));
  Kernel& k = *kernel;
  RunInGuest(k, [&k](Guest& g) -> SimTask<void> {
    Uproc& self = g.uproc();
    PageTable& pt = *self.page_table;
    const UprocLayout& layout = k.layout();
    const uint64_t heap_end = g.base() + layout.heap_off() + layout.heap_size();
    // Pend the last 4 heap pages and the first 4 stack pages in the same state.
    std::vector<uint32_t> saved;
    for (int i = -4; i < 4; ++i) {
      Pte* pte = pt.LookupMutable(heap_end + static_cast<int64_t>(i) * kPageSize);
      CO_ASSERT_TRUE(pte != nullptr);
      saved.push_back(pte->flags);
      pte->flags = kPteRead | kPteCow;
    }
    PageFaultInfo info;
    info.kind = Code::kFaultPageProt;
    info.va = heap_end - 4 * kPageSize;
    info.access_end = info.va + 8 * kPageSize;  // the access itself spans into the stack
    info.is_write = true;
    info.page_table = &pt;
    const uint32_t limit = FaultAroundBegin(k, self, info);
    CO_ASSERT_EQ(limit, 8u);  // span boost: 8 pages guaranteed touched
    const Pte* fault_pte = pt.LookupMutable(info.va);
    const FaultWindow window = FaultAroundScan(k, self, pt, info, *fault_pte, limit);
    CO_ASSERT_EQ(window.va, info.va);
    CO_ASSERT_EQ(window.pages, 4u);  // clipped at the heap/stack segment boundary
    // Restore so the exit path sees the original mappings.
    uint64_t idx = 0;
    for (int i = -4; i < 4; ++i) {
      pt.LookupMutable(heap_end + static_cast<int64_t>(i) * kPageSize)->flags = saved[idx++];
    }
  });
}

TEST(FaultAroundScanTest, StopsAtFlagAndRefcountClassChanges) {
  auto kernel = MakeUforkKernel(StormConfig(ForkStrategy::kCopa, 16, true));
  Kernel& k = *kernel;
  RunInGuest(k, [&k](Guest& g) -> SimTask<void> {
    Uproc& self = g.uproc();
    PageTable& pt = *self.page_table;
    const uint64_t heap_mid = g.base() + k.layout().heap_off() + 64 * kPageSize;
    std::vector<uint32_t> saved;
    for (uint64_t i = 0; i < 8; ++i) {
      Pte* pte = pt.LookupMutable(heap_mid + i * kPageSize);
      CO_ASSERT_TRUE(pte != nullptr);
      saved.push_back(pte->flags);
      pte->flags = kPteRead | kPteCow;
    }
    PageFaultInfo info;
    info.kind = Code::kFaultPageProt;
    info.va = heap_mid;
    info.access_end = info.va + 1;
    info.is_write = true;
    info.page_table = &pt;
    const Pte* fault_pte = pt.LookupMutable(info.va);
    // Flag run: page 5 differs (extra LoadCapFault bit) -> window stops at 5 pages.
    pt.LookupMutable(heap_mid + 5 * kPageSize)->flags = kPteRead | kPteCow | kPteLoadCapFault;
    FaultWindow window = FaultAroundScan(k, self, pt, info, *fault_pte, 16);
    CO_ASSERT_EQ(window.pages, 5u);
    pt.LookupMutable(heap_mid + 5 * kPageSize)->flags = kPteRead | kPteCow;
    // Refcount class: page 3 becomes shared (refcount 2) while the fault page is private.
    FrameAllocator& frames = k.machine().frames();
    const FrameId shared_frame = pt.LookupMutable(heap_mid + 3 * kPageSize)->frame;
    frames.AddRef(shared_frame);
    window = FaultAroundScan(k, self, pt, info, *fault_pte, 16);
    CO_ASSERT_EQ(window.pages, 3u);
    CO_ASSERT_TRUE(!window.shared);
    frames.Release(shared_frame);
    // Limit clamps the scan even when the run continues.
    window = FaultAroundScan(k, self, pt, info, *fault_pte, 2);
    CO_ASSERT_EQ(window.pages, 2u);
    uint64_t idx = 0;
    for (uint64_t i = 0; i < 8; ++i) {
      pt.LookupMutable(heap_mid + i * kPageSize)->flags = saved[idx++];
    }
  });
}

TEST(FaultAroundScanTest, SegmentEndCoversRegionEnd) {
  // The final segment's end IS the region end, so windows can never scan past the region.
  UprocLayout layout(StormConfig(ForkStrategy::kCopa, 1, false).layout);
  EXPECT_EQ(layout.SegmentEndOf(layout.mmap_off()), layout.TotalSize());
  EXPECT_EQ(layout.SegmentEndOf(layout.TotalSize() - 1), layout.TotalSize());
  EXPECT_EQ(layout.SegmentEndOf(layout.heap_off()), layout.heap_off() + layout.heap_size());
}

TEST(FaultAroundControllerTest, GrowsOnAdjacencyAndShrinksOnWaste) {
  auto kernel = MakeUforkKernel(StormConfig(ForkStrategy::kCopa, 16, true));
  Kernel& k = *kernel;
  RunInGuest(k, [&k](Guest& g) -> SimTask<void> {
    Uproc& self = g.uproc();
    PageTable& pt = *self.page_table;
    const uint64_t heap = g.base() + k.layout().heap_off() + 16 * kPageSize;
    PageFaultInfo info;
    info.kind = Code::kFaultPageProt;
    info.is_write = true;
    info.page_table = &pt;
    // Perfectly sequential storm: each fault lands exactly where the last window ended, so the
    // window doubles until it hits max_window.
    uint64_t va = heap;
    const uint32_t expected[] = {1, 2, 4, 8, 16, 16};
    for (const uint32_t want : expected) {
      info.va = va;
      info.access_end = va + 1;
      const uint32_t limit = FaultAroundBegin(k, self, info);
      CO_ASSERT_EQ(limit, want);
      FaultWindow window;
      window.va = va;
      window.pages = limit;
      FaultAroundCommit(k, self, window);
      va += static_cast<uint64_t>(limit) * kPageSize;
    }
    CO_ASSERT_EQ(self.fault_around.window, 16u);
    // Waste: a speculative marker left untouched in the previous window halves the window and
    // is counted.
    const uint64_t wasted_before = k.stats().speculative_pages_wasted;
    Pte* marked = pt.LookupMutable(va - kPageSize);
    CO_ASSERT_TRUE(marked != nullptr);
    marked->flags |= kPteFaultAround;
    info.va = heap + 200 * kPageSize;  // non-adjacent fault
    info.access_end = info.va + 1;
    const uint32_t limit = FaultAroundBegin(k, self, info);
    CO_ASSERT_EQ(limit, 8u);
    CO_ASSERT_EQ(self.fault_around.window, 8u);
    CO_ASSERT_EQ(k.stats().speculative_pages_wasted, wasted_before + 1);
    CO_ASSERT_EQ(marked->flags & kPteFaultAround, 0u);  // sweep cleared the marker
  });
}

TEST(FaultAroundControllerTest, AccessConsumesSpeculativeMarker) {
  auto kernel = MakeUforkKernel(StormConfig(ForkStrategy::kCopa, 16, true));
  Kernel& k = *kernel;
  RunInGuest(k, [&k](Guest& g) -> SimTask<void> {
    Uproc& self = g.uproc();
    PageTable& pt = *self.page_table;
    const uint64_t va = g.base() + k.layout().heap_off() + 32 * kPageSize;
    Pte* pte = pt.LookupMutable(va);
    CO_ASSERT_TRUE(pte != nullptr);
    pte->flags |= kPteFaultAround;
    auto loaded = g.Load<uint64_t>(g.ddc(), va);
    CO_ASSERT_OK(loaded);
    // The touch consumed the marker, so the next sweep sees no waste.
    CO_ASSERT_EQ(pte->flags & kPteFaultAround, 0u);
    const uint64_t wasted_before = k.stats().speculative_pages_wasted;
    self.fault_around.spec_lo = va;
    self.fault_around.spec_hi = va + kPageSize;
    PageFaultInfo info;
    info.kind = Code::kFaultPageProt;
    info.va = va + 8 * kPageSize;
    info.access_end = info.va + 1;
    info.is_write = true;
    info.page_table = &pt;
    (void)FaultAroundBegin(k, self, info);
    CO_ASSERT_EQ(k.stats().speculative_pages_wasted, wasted_before);
  });
}

TEST(FaultAroundControllerTest, DisabledWindowIsAlwaysOne) {
  auto kernel = MakeUforkKernel(StormConfig(ForkStrategy::kCopa, 1, true));
  Kernel& k = *kernel;
  RunInGuest(k, [&k](Guest& g) -> SimTask<void> {
    Uproc& self = g.uproc();
    PageTable& pt = *self.page_table;
    PageFaultInfo info;
    info.kind = Code::kFaultPageProt;
    info.va = g.base() + k.layout().heap_off() + 8 * kPageSize;
    // Even a multi-page access span cannot widen the window when fault-around is off.
    info.access_end = info.va + 8 * kPageSize;
    info.is_write = true;
    info.page_table = &pt;
    CO_ASSERT_EQ(FaultAroundBegin(k, self, info), 1u);
    FaultWindow window;
    window.va = info.va;
    FaultAroundCommit(k, self, window);
    CO_ASSERT_EQ(self.fault_around.spec_lo, 0u);  // no speculation state when disabled
    CO_ASSERT_EQ(self.fault_around.spec_hi, 0u);
  });
}

}  // namespace
}  // namespace ufork
