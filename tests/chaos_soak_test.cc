// Chaos soak (DESIGN.md §4.9, EXPERIMENTS.md "Chaos soak").
//
// Every fault site is armed with a seeded probabilistic policy while a process tree hammers
// fork, mmap, pipes, message queues, and the ramdisk. Under that storm the kernel must uphold
// three properties, checked per seed:
//
//   1. Containment — every injected failure surfaces as an errno to exactly one μprocess;
//      workers observing one exit with a sentinel status. No host CHECK fires, no other
//      worker is disturbed.
//   2. No leaks — after the tree drains, frame accounting balances against the page tables
//      (check_frame_invariants is also on, so every syscall exit re-proves it mid-storm).
//   3. Determinism — the entire run, injected failures included, is a pure function of
//      (system, seed): replaying a seed reproduces the completion time and every kernel
//      counter bit-for-bit. A chaos failure ships as a one-line repro: its seed.
//
// Seeds 1..8 always run; UFORK_CHAOS_SEEDS="123,456" appends extra seeds (CI injects a
// $GITHUB_RUN_ID-derived one so the fleet explores fresh schedules while any failure stays
// replayable from the logged seed).
//
// UFORK_SOAK_COMPACT=1 (single-shard only) additionally runs the storm with the incremental
// compaction service live: budgeted region moves, freed-region quarantine, and the budgeted
// revocation sweep, with the kCompactStep / kRevokeSweep sites armed alongside everything
// else. A mid-step hit must leave the struck region whole at one base and the quarantine
// consistent, and the per-seed replay must still be bit-identical. After each run the
// quarantine is drained and the revocation invariant is proved: no tagged capability bounded
// inside a freed-and-swept range survives in any live frame.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "src/ufork/revocation.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

constexpr int kWorkers = 3;
constexpr int kIterations = 3;
constexpr int kWorkerFailedExit = 42;  // a worker saw an injected errno and bailed out
constexpr double kFailureProbability = 0.02;

// Sharded-host soak (DESIGN.md §4.11, the CI TSan job): UFORK_SOAK_SHARDS=N runs the same
// storm on N concurrent shard workers. Fault-site hit order then follows host timing, so the
// per-seed replay equality below is shards=1-only; the sharded soak proves containment and
// leak-freedom under real host concurrency instead.
int SoakShards() {
  if (const char* s = std::getenv("UFORK_SOAK_SHARDS"); s != nullptr) {
    const int shards = std::atoi(s);
    if (shards > 1) {
      return shards;
    }
  }
  return 1;
}

// UFORK_SOAK_COMPACT=1: storm with the incremental compaction service live. Single-shard
// only — the service interleaves mover quanta with mutators on one virtual timeline.
bool SoakCompact() {
  const char* s = std::getenv("UFORK_SOAK_COMPACT");
  return s != nullptr && std::atoi(s) != 0 && SoakShards() == 1;
}

KernelConfig SoakConfig(bool demand_paging, bool compact) {
  KernelConfig config;
  config.demand_paging = demand_paging;
  if (compact) {
    config.compact_budget_pages = 4;
    config.compact_step_interval = 2'000;
    config.quarantine_freed_regions = true;
    config.compact_trigger.enabled = true;
    config.compact_trigger.arm_fragmentation = 0.3;
    config.compact_trigger.clear_fragmentation = 0.1;
  }
  config.layout.text_size = 32 * kKiB;
  config.layout.rodata_size = 8 * kKiB;
  config.layout.got_size = 4 * kKiB;
  config.layout.data_size = 8 * kKiB;
  config.layout.heap_size = 256 * kKiB;
  config.layout.stack_size = 32 * kKiB;
  config.layout.tls_size = 4 * kKiB;
  config.layout.mmap_size = 64 * kKiB;
  config.host_shards = SoakShards();
  // The per-syscall-exit frame-accounting walk is race-free only with one shard; the
  // post-run check in RunSoak (all shards quiescent) still runs either way.
  config.check_frame_invariants = config.host_shards == 1;
  return config;
}

// One worker's storm: every major subsystem, every iteration. The first injected errno ends
// the worker with the sentinel status — anything else (a wrong value read back, a blocked
// queue, a host abort) fails the test itself. Every operation is written so that it cannot
// block regardless of where the injector strikes: pipes are read for exactly the bytes
// written, queues are received from only after a successful send.
SimTask<void> RunWorker(Guest& g, int id) {
  for (int iter = 0; iter < kIterations; ++iter) {
    // Anonymous memory.
    auto mapped = co_await g.MmapAnon(2 * kPageSize);
    if (!mapped.ok()) co_await g.Exit(kWorkerFailedExit);
    for (uint64_t off = 0; off < 2 * kPageSize; off += kPageSize) {
      auto stored = g.Store<uint64_t>(*mapped, mapped->base() + off, off + 1);
      if (!stored.ok()) co_await g.Exit(kWorkerFailedExit);
    }
    auto loaded = g.Load<uint64_t>(*mapped, mapped->base() + kPageSize);
    if (!loaded.ok()) co_await g.Exit(kWorkerFailedExit);
    CO_ASSERT_EQ(*loaded, kPageSize + 1);

    // Heap (CoW-break pressure in forked workers: tinyalloc metadata lives on shared pages).
    auto block = g.Malloc(256);
    if (!block.ok()) co_await g.Exit(kWorkerFailedExit);
    auto heap_store = g.Store<uint64_t>(*block, block->base(), 0xABCDu + iter);
    if (!heap_store.ok()) co_await g.Exit(kWorkerFailedExit);
    auto heap_load = g.Load<uint64_t>(*block, block->base());
    if (!heap_load.ok()) co_await g.Exit(kWorkerFailedExit);
    CO_ASSERT_EQ(*heap_load, 0xABCDu + iter);

    // Ramdisk.
    const std::string path = "/chaos/worker-" + std::to_string(id);
    auto fd = co_await g.Open(path, kOpenRead | kOpenWrite | kOpenCreate);
    if (!fd.ok()) co_await g.Exit(kWorkerFailedExit);
    auto file_buf = g.Malloc(6000);
    if (!file_buf.ok()) co_await g.Exit(kWorkerFailedExit);
    auto wrote = co_await g.Write(*fd, *file_buf, 6000);
    if (!wrote.ok()) co_await g.Exit(kWorkerFailedExit);
    auto sought = co_await g.Seek(*fd, 0, kSeekSet);
    if (!sought.ok()) co_await g.Exit(kWorkerFailedExit);
    auto file_read = co_await g.Read(*fd, *file_buf, 6000);
    if (!file_read.ok()) co_await g.Exit(kWorkerFailedExit);
    CO_ASSERT_EQ(*file_read, 6000);
    auto closed = co_await g.Close(*fd);
    if (!closed.ok()) co_await g.Exit(kWorkerFailedExit);

    // Message queues — receive only after a successful send, so the queue can never block.
    auto mq = co_await g.MqOpen("/mq/chaos-" + std::to_string(id), /*create=*/true);
    if (!mq.ok()) co_await g.Exit(kWorkerFailedExit);
    auto msg = g.Malloc(96);
    if (!msg.ok()) co_await g.Exit(kWorkerFailedExit);
    auto sent = co_await g.Write(*mq, *msg, 96);
    if (!sent.ok()) co_await g.Exit(kWorkerFailedExit);
    auto received = co_await g.Read(*mq, *msg, 96);
    if (!received.ok()) co_await g.Exit(kWorkerFailedExit);
    CO_ASSERT_EQ(*received, 96);

    // Pipes — read back exactly the bytes the write reported, then close both ends.
    auto pipe = co_await g.Pipe();
    if (!pipe.ok()) co_await g.Exit(kWorkerFailedExit);
    auto pipe_written = co_await g.Write(pipe->second, *msg, 96);
    if (!pipe_written.ok()) co_await g.Exit(kWorkerFailedExit);
    if (*pipe_written > 0) {
      auto pipe_read = co_await g.Read(pipe->first, *msg, static_cast<uint64_t>(*pipe_written));
      if (!pipe_read.ok()) co_await g.Exit(kWorkerFailedExit);
      CO_ASSERT_EQ(*pipe_read, *pipe_written);
    }
    auto closed_r = co_await g.Close(pipe->first);
    auto closed_w = co_await g.Close(pipe->second);
    if (!closed_r.ok() || !closed_w.ok()) co_await g.Exit(kWorkerFailedExit);
  }
  co_await g.Exit(0);
}

// The init process: waves of forked workers. A failed fork is itself an acceptable injection
// outcome (the rollback tests prove it leaves no ghost); we only wait for forks that
// succeeded, and every reaped status must be clean-exit or the injection sentinel.
SimTask<void> RunInit(Guest& g) {
  for (int wave = 0; wave < kIterations; ++wave) {
    int forked = 0;
    for (int id = 0; id < kWorkers; ++id) {
      auto child = co_await g.Fork([id](Guest& cg) -> SimTask<void> {
        co_await RunWorker(cg, id);
      });
      if (child.ok()) {
        ++forked;
      } else {
        // fork may only fail with the injected errno.
        CO_ASSERT_EQ(child.code(), Code::kErrNoMem);
      }
    }
    for (int reaped = 0; reaped < forked; ++reaped) {
      auto waited = co_await g.Wait();
      CO_ASSERT_OK(waited);
      CO_ASSERT_TRUE(waited->status == 0 || waited->status == kWorkerFailedExit);
    }
  }
  co_await g.Exit(0);
}

struct SoakRun {
  Cycles completion = 0;
  KernelStats stats;
  uint64_t failures_injected = 0;
  uint64_t frames_in_use = 0;
};

using KernelFactory = std::unique_ptr<Kernel> (*)(KernelConfig config);

SoakRun RunSoak(KernelFactory make, uint64_t seed, bool demand_paging, bool compact) {
  auto kernel = make(SoakConfig(demand_paging, compact));
  auto pid = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                             co_await RunInit(g);
                           }),
                           "chaos-init");
  EXPECT_TRUE(pid.ok());
  // Arm after Spawn (mapping the init image must succeed) but before any guest runs: from the
  // first scheduled instruction on, every site can fire.
  kernel->fault_injector().ArmAll(FaultPolicy::Probabilistic(kFailureProbability), seed);
  kernel->Run();
  kernel->fault_injector().DisarmAll();

  SoakRun run;
  run.completion = kernel->sched().CompletionTime();
  run.stats = kernel->stats();
  run.failures_injected = kernel->fault_injector().total_failures();
  run.frames_in_use = kernel->machine().frames().frames_in_use();

  // Post-storm invariants: the tree drained, accounting balances, nothing leaked.
  EXPECT_EQ(kernel->LivePids().size(), 0u) << "seed " << seed;
  EXPECT_TRUE(kernel->CheckFrameAccounting().ok()) << "seed " << seed;
  if (run.stats.regions_tombstoned == 0) {
    EXPECT_EQ(run.frames_in_use, 0u) << "frames leaked under seed " << seed;
  }
  if (compact) {
    // Whatever the injector did to compaction quanta mid-storm, the quarantine must drain
    // cleanly and the revocation invariant must hold: no tagged capability with bounds
    // inside a freed-and-swept range is loadable from any live frame.
    SweepQuarantineToCompletion(*kernel);
    const auto invariant = CheckRevocationInvariant(*kernel);
    EXPECT_TRUE(invariant.ok()) << "seed " << seed << ": "
                                << (invariant.ok() ? "" : invariant.error().message);
    EXPECT_EQ(kernel->address_space().Stats().quarantined_bytes, 0u) << "seed " << seed;
  }
  return run;
}

void ExpectStatsEq(const KernelStats& a, const KernelStats& b, uint64_t seed) {
  EXPECT_EQ(a.forks, b.forks) << "seed " << seed;
  EXPECT_EQ(a.exits, b.exits) << "seed " << seed;
  EXPECT_EQ(a.syscalls, b.syscalls) << "seed " << seed;
  EXPECT_EQ(a.pages_copied_on_fault, b.pages_copied_on_fault) << "seed " << seed;
  EXPECT_EQ(a.caps_relocated_on_fault, b.caps_relocated_on_fault) << "seed " << seed;
  EXPECT_EQ(a.caps_stripped, b.caps_stripped) << "seed " << seed;
  EXPECT_EQ(a.tocttou_copies, b.tocttou_copies) << "seed " << seed;
  EXPECT_EQ(a.faults_taken, b.faults_taken) << "seed " << seed;
  EXPECT_EQ(a.pages_resolved_by_faultaround, b.pages_resolved_by_faultaround) << "seed " << seed;
  EXPECT_EQ(a.pages_reclaimed_in_place, b.pages_reclaimed_in_place) << "seed " << seed;
  EXPECT_EQ(a.speculative_pages_wasted, b.speculative_pages_wasted) << "seed " << seed;
  EXPECT_EQ(a.pages_demand_filled, b.pages_demand_filled) << "seed " << seed;
  EXPECT_EQ(a.fault_cycles, b.fault_cycles) << "seed " << seed;
  EXPECT_EQ(a.regions_tombstoned, b.regions_tombstoned) << "seed " << seed;
  // Incremental compaction and revocation are part of the deterministic timeline: quantum
  // counts, moves, barrier parks and revocations must replay bit-identically too.
  EXPECT_EQ(a.compact_steps, b.compact_steps) << "seed " << seed;
  EXPECT_EQ(a.compact_regions_moved, b.compact_regions_moved) << "seed " << seed;
  EXPECT_EQ(a.compact_parked, b.compact_parked) << "seed " << seed;
  EXPECT_EQ(a.pause_cycles_max, b.pause_cycles_max) << "seed " << seed;
  EXPECT_EQ(a.quarantined_bytes, b.quarantined_bytes) << "seed " << seed;
  EXPECT_EQ(a.caps_revoked, b.caps_revoked) << "seed " << seed;
  EXPECT_EQ(a.per_syscall, b.per_syscall) << "seed " << seed;
}

std::vector<uint64_t> SoakSeeds() {
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= 8; ++s) {
    seeds.push_back(s);
  }
  if (const char* extra = std::getenv("UFORK_CHAOS_SEEDS"); extra != nullptr) {
    const std::string spec(extra);
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      const std::string token = spec.substr(pos, comma - pos);
      if (!token.empty()) {
        seeds.push_back(std::strtoull(token.c_str(), nullptr, 10));
      }
      pos = comma + 1;
    }
  }
  return seeds;
}

void SoakSystem(const char* name, KernelFactory make, bool demand_paging = false,
                bool compact = false) {
  uint64_t total_failures = 0;
  uint64_t total_forks = 0;
  uint64_t total_syscalls = 0;
  uint64_t total_compact_steps = 0;
  uint64_t total_caps_revoked = 0;
  const std::vector<uint64_t> seeds = SoakSeeds();
  for (const uint64_t seed : seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SoakRun first = RunSoak(make, seed, demand_paging, compact);
    if (SoakShards() == 1) {
      // Replay bit-identity is a single-shard property: with concurrent shard workers the
      // injector's hit order — and therefore which μprocess a probabilistic policy strikes —
      // follows host timing. RunSoak's containment and leak checks hold at any shard count.
      const SoakRun replay = RunSoak(make, seed, demand_paging, compact);
      EXPECT_EQ(first.completion, replay.completion)
          << "chaos run is not a pure function of the seed";
      EXPECT_EQ(first.failures_injected, replay.failures_injected);
      ExpectStatsEq(first.stats, replay.stats, seed);
    }
    total_failures += first.failures_injected;
    total_forks += first.stats.forks;
    total_syscalls += first.stats.syscalls;
    total_compact_steps += first.stats.compact_steps;
    total_caps_revoked += first.stats.caps_revoked;
  }
  // The storm must actually storm: across the seed set, injections fired.
  EXPECT_GT(total_failures, 0u);
  if (compact) {
    // And the compaction soak must actually compact: the service ran quanta under fire.
    EXPECT_GT(total_compact_steps, 0u);
  }
  // One summary line per system so a CI log records what the soak exercised.
  std::printf("[chaos] %s: seeds=%zu injections=%llu forks=%llu syscalls=%llu"
              " compact-steps=%llu caps-revoked=%llu\n",
              name, seeds.size(), static_cast<unsigned long long>(total_failures),
              static_cast<unsigned long long>(total_forks),
              static_cast<unsigned long long>(total_syscalls),
              static_cast<unsigned long long>(total_compact_steps),
              static_cast<unsigned long long>(total_caps_revoked));
}

TEST(ChaosSoak, UforkSurvivesSeededStorm) {
  // Only the μFork backend owns a compaction engine, so only its soaks honor
  // UFORK_SOAK_COMPACT (the CI chaos matrix's compaction row).
  SoakSystem("ufork", [](KernelConfig c) { return MakeUforkKernel(c); },
             /*demand_paging=*/false, SoakCompact());
}

TEST(ChaosSoak, MasSurvivesSeededStorm) {
  SoakSystem("mas", [](KernelConfig c) { return MakeMasKernel(c, MasParams{}); });
}

TEST(ChaosSoak, VmCloneSurvivesSeededStorm) {
  SoakSystem("vmclone", [](KernelConfig c) { return MakeVmCloneKernel(c, VmCloneParams{}); });
}

// The same storm with demand paging on: every worker's anonymous window and heap touch now
// runs through the lazy-fill fault path, so kLazyFillAlloc (and the rest of the armed sites)
// strike mid-fill. Containment, leak-freedom and per-seed replay identity must all still hold.
TEST(ChaosSoak, UforkSurvivesSeededStormWithDemandPaging) {
  SoakSystem("ufork-demand", [](KernelConfig c) { return MakeUforkKernel(c); },
             /*demand_paging=*/true, SoakCompact());
}

TEST(ChaosSoak, MasSurvivesSeededStormWithDemandPaging) {
  SoakSystem("mas-demand", [](KernelConfig c) { return MakeMasKernel(c, MasParams{}); },
             /*demand_paging=*/true);
}

TEST(ChaosSoak, VmCloneSurvivesSeededStormWithDemandPaging) {
  SoakSystem("vmclone-demand",
             [](KernelConfig c) { return MakeVmCloneKernel(c, VmCloneParams{}); },
             /*demand_paging=*/true);
}

}  // namespace
}  // namespace ufork
