// Regression test for the GCC 12 coroutine temporary-lifetime defect and its workaround.
//
// GCC 12 mis-destroys a non-trivially-destructible temporary (e.g. a lambda closure capturing
// std::strings) materialized inside a co_await full-expression: the closure's cleanup runs
// against a stale frame slot, producing a bad free. The repo-wide rule (documented on
// Guest::Fork) is to hoist such closures into named locals before awaiting. This test encodes
// the safe pattern; the unsafe pattern is kept in a comment as the reproducer.
#include <gtest/gtest.h>

#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

SimTask<Result<Pid>> NestedForkWithStringCaptures(Guest& g, const std::string& path) {
  const std::string tmp = path + ".tmp";
  // UNSAFE on GCC 12 (bad free at the end of the co_await full-expression):
  //   auto child = co_await g.Fork([path, tmp](Guest& cg) -> SimTask<void> { ... });
  // SAFE: hoist the closure.
  GuestFn child_fn = [path, tmp](Guest& cg) -> SimTask<void> {
    EXPECT_EQ(tmp, "/x.tmp");
    EXPECT_EQ(path, "/x");
    co_await cg.Exit(3);
  };
  auto child = co_await g.Fork(std::move(child_fn));
  co_return child;
}

TEST(CoroutineLifetime, HoistedClosureSurvivesNestedFork) {
  auto kernel = MakeUforkKernel({});
  auto pid = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                             auto child = co_await NestedForkWithStringCaptures(g, "/x");
                             CO_ASSERT_OK(child);
                             auto waited = co_await g.Wait();
                             CO_ASSERT_OK(waited);
                             EXPECT_EQ(waited->status, 3);
                           }),
                           "lifetime");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

TEST(CoroutineLifetime, TriviallyDestructibleInlineClosureIsFine) {
  auto kernel = MakeUforkKernel({});
  int observed = 0;
  auto pid = kernel->Spawn(MakeGuestEntry([&observed](Guest& g) -> SimTask<void> {
                             // Inline closures with only trivial captures are allowed.
                             auto child = co_await g.Fork([&observed](Guest& cg) -> SimTask<void> {
                               observed = 17;
                               co_await cg.Exit(0);
                             });
                             CO_ASSERT_OK(child);
                             (void)co_await g.Wait();
                           }),
                           "trivial");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
  EXPECT_EQ(observed, 17);
}

}  // namespace
}  // namespace ufork
