// Edge-case tests for the IPC and filesystem substrates: pipe blocking/EOF/EPIPE semantics,
// message-queue boundaries, VFS seek/append/rename behaviour, and descriptor-table mechanics.
#include <gtest/gtest.h>

#include "src/baseline/system.h"
#include "src/guest/guest.h"
#include "tests/guest_test_util.h"

namespace ufork {
namespace {

void RunGuest(GuestFn fn, int cores = 4) {
  KernelConfig config;
  config.cores = cores;
  config.layout.heap_size = 1 * kMiB;
  auto kernel = MakeUforkKernel(config);
  auto pid = kernel->Spawn(MakeGuestEntry(std::move(fn)), "ipc");
  ASSERT_TRUE(pid.ok());
  kernel->Run();
}

// --- pipes ---------------------------------------------------------------------------------

TEST(PipeSemantics, WriteToClosedReadEndIsEpipe) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto pipe_fds = co_await g.Pipe();
    CO_ASSERT_OK(pipe_fds);
    const auto [rfd, wfd] = *pipe_fds;
    CO_ASSERT_OK(co_await g.Close(rfd));
    auto buf = g.Malloc(16);
    CO_ASSERT_OK(buf);
    auto written = co_await g.Write(wfd, *buf, 8);
    EXPECT_EQ(written.code(), Code::kErrPipe);
  });
}

TEST(PipeSemantics, ReadOnWriteEndAndViceVersaRejected) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto pipe_fds = co_await g.Pipe();
    CO_ASSERT_OK(pipe_fds);
    const auto [rfd, wfd] = *pipe_fds;
    auto buf = g.Malloc(16);
    CO_ASSERT_OK(buf);
    EXPECT_EQ((co_await g.Read(wfd, *buf, 8)).code(), Code::kErrBadFd);
    EXPECT_EQ((co_await g.Write(rfd, *buf, 8)).code(), Code::kErrBadFd);
    co_return;
  });
}

TEST(PipeSemantics, WriterBlocksWhenFullReaderDrains) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto pipe_fds = co_await g.Pipe();
    CO_ASSERT_OK(pipe_fds);
    const auto [rfd, wfd] = *pipe_fds;
    // Child fills the pipe beyond capacity and reports how much it wrote.
    auto child = co_await g.Fork([rfd = rfd, wfd = wfd](Guest& cg) -> SimTask<void> {
      (void)co_await cg.Close(rfd);
      auto big = cg.Malloc(96 * 1024);  // 1.5x pipe capacity
      CO_ASSERT_OK(big);
      auto n = co_await cg.Write(wfd, *big, 96 * 1024);  // must block, then complete
      CO_ASSERT_OK(n);
      co_await cg.Exit(*n == 96 * 1024 ? 0 : 1);
    });
    CO_ASSERT_OK(child);
    CO_ASSERT_OK(co_await g.Close(wfd));
    // Parent drains slowly.
    auto buf = g.Malloc(16 * 1024);
    CO_ASSERT_OK(buf);
    uint64_t total = 0;
    for (;;) {
      auto n = co_await g.Read(rfd, *buf, 16 * 1024);
      CO_ASSERT_OK(n);
      if (*n == 0) {
        break;
      }
      total += static_cast<uint64_t>(*n);
    }
    EXPECT_EQ(total, 96u * 1024u);
    auto waited = co_await g.Wait();
    CO_ASSERT_OK(waited);
    EXPECT_EQ(waited->status, 0);
  });
}

TEST(PipeSemantics, BytesArriveInOrderAcrossManyWrites) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto pipe_fds = co_await g.Pipe();
    CO_ASSERT_OK(pipe_fds);
    const auto [rfd, wfd] = *pipe_fds;
    auto child = co_await g.Fork([rfd = rfd, wfd = wfd](Guest& cg) -> SimTask<void> {
      (void)co_await cg.Close(rfd);
      auto buf = cg.Malloc(256);
      CO_ASSERT_OK(buf);
      for (uint32_t i = 0; i < 200; ++i) {
        CO_ASSERT_OK(cg.StoreAt<uint32_t>(*buf, 0, i));
        CO_ASSERT_OK(co_await cg.Write(wfd, *buf, 4));
      }
      co_await cg.Exit(0);
    });
    CO_ASSERT_OK(child);
    CO_ASSERT_OK(co_await g.Close(wfd));
    auto buf = g.Malloc(16);
    CO_ASSERT_OK(buf);
    for (uint32_t expected = 0; expected < 200; ++expected) {
      auto n = co_await g.Read(rfd, *buf, 4);
      CO_ASSERT_OK(n);
      CO_ASSERT_EQ(*n, 4);
      auto v = g.LoadAt<uint32_t>(*buf, 0);
      CO_ASSERT_OK(v);
      CO_ASSERT_EQ(*v, expected);
    }
    (void)co_await g.Wait();
  });
}

// --- message queues ------------------------------------------------------------------------

TEST(MqSemantics, MessageBoundariesPreserved) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto fd = co_await g.MqOpen("/mq/bounds", true);
    CO_ASSERT_OK(fd);
    auto msg = g.PlaceString("0123456789");
    CO_ASSERT_OK(msg);
    CO_ASSERT_OK(co_await g.Write(*fd, *msg, 10));
    CO_ASSERT_OK(co_await g.Write(*fd, *msg, 4));
    auto buf = g.Malloc(64);
    CO_ASSERT_OK(buf);
    auto first = co_await g.Read(*fd, *buf, 64);
    CO_ASSERT_OK(first);
    EXPECT_EQ(*first, 10) << "one receive = one whole message, not a byte stream";
    auto second = co_await g.Read(*fd, *buf, 64);
    CO_ASSERT_OK(second);
    EXPECT_EQ(*second, 4);
    co_return;
  });
}

TEST(MqSemantics, ShortReceiveTruncates) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto fd = co_await g.MqOpen("/mq/trunc", true);
    CO_ASSERT_OK(fd);
    auto msg = g.PlaceString("abcdefgh");
    CO_ASSERT_OK(msg);
    CO_ASSERT_OK(co_await g.Write(*fd, *msg, 8));
    auto buf = g.Malloc(16);
    CO_ASSERT_OK(buf);
    auto n = co_await g.Read(*fd, *buf, 3);
    CO_ASSERT_OK(n);
    EXPECT_EQ(*n, 3);
    co_return;
  });
}

TEST(MqSemantics, OpenWithoutCreateFails) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto fd = co_await g.MqOpen("/mq/nonexistent", false);
    EXPECT_EQ(fd.code(), Code::kErrNoEnt);
    co_return;
  });
}

TEST(MqSemantics, QueueSharedByName) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto a = co_await g.MqOpen("/mq/shared", true);
    auto b = co_await g.MqOpen("/mq/shared", true);  // same underlying queue
    CO_ASSERT_OK(a);
    CO_ASSERT_OK(b);
    auto msg = g.PlaceString("x");
    CO_ASSERT_OK(msg);
    CO_ASSERT_OK(co_await g.Write(*a, *msg, 1));
    auto buf = g.Malloc(16);
    CO_ASSERT_OK(buf);
    auto n = co_await g.Read(*b, *buf, 16);
    CO_ASSERT_OK(n);
    EXPECT_EQ(*n, 1);
    co_return;
  });
}

// --- VFS ---------------------------------------------------------------------------------------

TEST(VfsSemantics, SeekSetCurEnd) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto fd = co_await g.Open("/seek", kOpenRead | kOpenWrite | kOpenCreate);
    CO_ASSERT_OK(fd);
    auto msg = g.PlaceString("0123456789");
    CO_ASSERT_OK(msg);
    CO_ASSERT_OK(co_await g.Write(*fd, *msg, 10));
    auto pos = co_await g.Seek(*fd, 2, kSeekSet);
    CO_ASSERT_OK(pos);
    EXPECT_EQ(*pos, 2);
    auto buf = g.Malloc(16);
    CO_ASSERT_OK(buf);
    auto n = co_await g.Read(*fd, *buf, 3);
    CO_ASSERT_OK(n);
    auto bytes = g.FetchBytes(*buf, 3);
    CO_ASSERT_OK(bytes);
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(bytes->data()), 3), "234");
    pos = co_await g.Seek(*fd, -2, kSeekEnd);
    CO_ASSERT_OK(pos);
    EXPECT_EQ(*pos, 8);
    pos = co_await g.Seek(*fd, 1, kSeekCur);
    CO_ASSERT_OK(pos);
    EXPECT_EQ(*pos, 9);
    EXPECT_EQ((co_await g.Seek(*fd, -100, kSeekSet)).code(), Code::kErrInval);
    co_return;
  });
}

TEST(VfsSemantics, AppendModeWritesAtEnd) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto fd = co_await g.Open("/log", kOpenWrite | kOpenCreate);
    CO_ASSERT_OK(fd);
    auto msg = g.PlaceString("base");
    CO_ASSERT_OK(msg);
    CO_ASSERT_OK(co_await g.Write(*fd, *msg, 4));
    CO_ASSERT_OK(co_await g.Close(*fd));
    auto afd = co_await g.Open("/log", kOpenWrite | kOpenAppend);
    CO_ASSERT_OK(afd);
    CO_ASSERT_OK(co_await g.Write(*afd, *msg, 4));
    auto size = co_await g.FileSize("/log");
    CO_ASSERT_OK(size);
    EXPECT_EQ(*size, 8u);
    co_return;
  });
}

TEST(VfsSemantics, TruncateOnOpen) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto fd = co_await g.Open("/t", kOpenWrite | kOpenCreate);
    CO_ASSERT_OK(fd);
    auto msg = g.PlaceString("longcontent");
    CO_ASSERT_OK(msg);
    CO_ASSERT_OK(co_await g.Write(*fd, *msg, 11));
    auto tfd = co_await g.Open("/t", kOpenWrite | kOpenTrunc);
    CO_ASSERT_OK(tfd);
    auto size = co_await g.FileSize("/t");
    CO_ASSERT_OK(size);
    EXPECT_EQ(*size, 0u);
    co_return;
  });
}

TEST(VfsSemantics, RenameReplacesTarget) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto a = co_await g.Open("/a", kOpenWrite | kOpenCreate);
    auto b = co_await g.Open("/b", kOpenWrite | kOpenCreate);
    CO_ASSERT_OK(a);
    CO_ASSERT_OK(b);
    auto msg = g.PlaceString("A-content");
    CO_ASSERT_OK(msg);
    CO_ASSERT_OK(co_await g.Write(*a, *msg, 9));
    CO_ASSERT_OK(co_await g.Rename("/a", "/b"));
    auto size = co_await g.FileSize("/b");
    CO_ASSERT_OK(size);
    EXPECT_EQ(*size, 9u);
    EXPECT_EQ((co_await g.FileSize("/a")).code(), Code::kErrNoEnt);
    co_return;
  });
}

// --- descriptor table -----------------------------------------------------------------------

TEST(FdSemantics, Dup2SharesOffset) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto fd = co_await g.Open("/dup", kOpenRead | kOpenWrite | kOpenCreate);
    CO_ASSERT_OK(fd);
    auto dup = co_await g.Dup2(*fd, 7);
    CO_ASSERT_OK(dup);
    EXPECT_EQ(*dup, 7);
    auto msg = g.PlaceString("xyz");
    CO_ASSERT_OK(msg);
    CO_ASSERT_OK(co_await g.Write(*fd, *msg, 3));
    // The duplicate shares the open file description, hence the offset.
    auto pos = co_await g.Seek(7, 0, kSeekCur);
    CO_ASSERT_OK(pos);
    EXPECT_EQ(*pos, 3);
    // Closing the original keeps the duplicate usable.
    CO_ASSERT_OK(co_await g.Close(*fd));
    CO_ASSERT_OK(co_await g.Write(7, *msg, 3));
    auto size = co_await g.FileSize("/dup");
    CO_ASSERT_OK(size);
    EXPECT_EQ(*size, 6u);
    co_return;
  });
}

TEST(FdSemantics, BadDescriptorsRejected) {
  RunGuest([](Guest& g) -> SimTask<void> {
    auto buf = g.Malloc(16);
    CO_ASSERT_OK(buf);
    EXPECT_EQ((co_await g.Read(99, *buf, 4)).code(), Code::kErrBadFd);
    EXPECT_EQ((co_await g.Close(-1)).code(), Code::kErrBadFd);
    EXPECT_EQ((co_await g.Dup2(99, 5)).code(), Code::kErrBadFd);
    EXPECT_EQ((co_await g.Dup2(0, kMaxFds + 3)).code(), Code::kErrBadFd);
    co_return;
  });
}

// --- capability-tag integrity across IPC (DESIGN.md §4.14) ----------------------------------
//
// IPC transfer buffers move *bytes*, never tags: a write whose source bytes overlap a stored
// capability must land tag-stripped at the receiver, even when the destination granule held a
// valid capability the moment before the read overwrote it. Anything else is a laundering
// channel — fork a child, pipe your capability's bytes to it, and the child owns your
// authority. Checked for pipe (across a fork boundary), message queue, and VFS file, on all
// three systems × {eager, demand paging}.

// Seeds `slot` with a live capability (the receiver-side granule is *not* pristine), then
// overwrites its 16 capability bytes from `fd` and proves the reload is untagged with the
// source cap's byte image intact. `byte_source` may be null for cross-μprocess transfers,
// where the sender's capability encodes the sender's own (backend-placed) addresses — there
// only the tag-stripping half is backend-independent.
SimTask<void> ReadOverCapAndCheckStripped(Guest& g, int fd, const Capability& slot,
                                          const Capability* byte_source) {
  CO_ASSERT_OK(g.StoreCap(slot, slot.base(), g.ddc().WithAddress(slot.base())));
  auto seeded = g.LoadCap(slot, slot.base());
  CO_ASSERT_OK(seeded);
  CO_ASSERT_TRUE(seeded->tag());
  auto read = co_await g.Read(fd, slot, kCapSize);
  CO_ASSERT_OK(read);
  CO_ASSERT_EQ(*read, static_cast<int64_t>(kCapSize));
  auto laundered = g.LoadCap(slot, slot.base());
  CO_ASSERT_OK(laundered);
  EXPECT_FALSE(laundered->tag()) << "IPC delivered bytes must never carry a tag";
  if (byte_source == nullptr) {
    co_return;
  }
  // The byte image went through — only the out-of-band tag was stripped.
  for (uint64_t off = 0; off < kCapSize; off += 8) {
    auto got = g.Load<uint64_t>(slot, slot.base() + off);
    auto want = g.Load<uint64_t>(*byte_source, byte_source->base() + off);
    CO_ASSERT_OK(got);
    CO_ASSERT_OK(want);
    EXPECT_EQ(*got, *want);
  }
}

GuestFn MakeTagIntegrityGuest() {
  return [](Guest& g) -> SimTask<void> {
    // A source granule holding a live capability whose raw bytes every channel will carry.
    auto src = g.Malloc(32);
    CO_ASSERT_OK(src);
    CO_ASSERT_OK(g.StoreCap(*src, src->base(), g.ddc().WithAddress(src->base())));
    auto dst = g.Malloc(32);
    CO_ASSERT_OK(dst);

    // Pipe, across the fork boundary: the child writes its *own* copy of the capability's
    // bytes (fork preserved the tag inside the child's granule — that is μFork's job); the
    // pipe still must not let the tag cross back.
    auto pipe_fds = co_await g.Pipe();
    CO_ASSERT_OK(pipe_fds);
    const auto [rfd, wfd] = *pipe_fds;
    auto child = co_await g.Fork([rfd = rfd, wfd = wfd](Guest& cg) -> SimTask<void> {
      (void)co_await cg.Close(rfd);
      auto mine = cg.Malloc(32);
      CO_ASSERT_OK(mine);
      CO_ASSERT_OK(cg.StoreCap(*mine, mine->base(), cg.ddc().WithAddress(mine->base())));
      auto reloaded = cg.LoadCap(*mine, mine->base());
      CO_ASSERT_OK(reloaded);
      CO_ASSERT_TRUE(reloaded->tag());
      CO_ASSERT_OK(co_await cg.Write(wfd, *mine, kCapSize));
      co_await cg.Exit(0);
    });
    CO_ASSERT_OK(child);
    CO_ASSERT_OK(co_await g.Close(wfd));
    co_await ReadOverCapAndCheckStripped(g, rfd, *dst, /*byte_source=*/nullptr);
    CO_ASSERT_OK(co_await g.Close(rfd));
    auto waited = co_await g.Wait();
    CO_ASSERT_OK(waited);
    EXPECT_EQ(waited->status, 0);

    // Message queue: message boundaries are preserved, tags are not.
    auto mq = co_await g.MqOpen("/mq/tag-integrity", /*create=*/true);
    CO_ASSERT_OK(mq);
    CO_ASSERT_OK(co_await g.Write(*mq, *src, kCapSize));
    co_await ReadOverCapAndCheckStripped(g, *mq, *dst, &*src);
    CO_ASSERT_OK(co_await g.Close(*mq));

    // VFS file: write, seek back, read over the seeded capability.
    auto file = co_await g.Open("/tag-integrity", kOpenRead | kOpenWrite | kOpenCreate);
    CO_ASSERT_OK(file);
    CO_ASSERT_OK(co_await g.Write(*file, *src, kCapSize));
    CO_ASSERT_OK(co_await g.Seek(*file, 0, kSeekSet));
    co_await ReadOverCapAndCheckStripped(g, *file, *dst, &*src);
    CO_ASSERT_OK(co_await g.Close(*file));
    CO_ASSERT_OK(co_await g.Unlink("/tag-integrity"));
  };
}

TEST(TagIntegrity, IpcStripsTagsOnAllSystemsAndPagingModes) {
  struct Row {
    const char* name;
    std::unique_ptr<Kernel> (*make)(KernelConfig);
  };
  const Row rows[] = {
      {"ufork", [](KernelConfig c) { return MakeUforkKernel(c); }},
      {"mas", [](KernelConfig c) { return MakeMasKernel(c); }},
      {"vmclone", [](KernelConfig c) { return MakeVmCloneKernel(c); }},
  };
  for (const Row& row : rows) {
    for (const bool demand : {false, true}) {
      SCOPED_TRACE(std::string(row.name) + (demand ? "/demand" : "/eager"));
      KernelConfig config;
      config.layout.heap_size = 1 * kMiB;
      config.demand_paging = demand;
      auto kernel = row.make(std::move(config));
      auto pid = kernel->Spawn(MakeGuestEntry(MakeTagIntegrityGuest()), "tag-integrity");
      ASSERT_TRUE(pid.ok());
      kernel->Run();
    }
  }
}

}  // namespace
}  // namespace ufork
