#!/usr/bin/env sh
# Runs the host-throughput benchmark gate and records the results.
#
#   bench/run_benches.sh [build-dir] [output-json]
#
# Defaults: build-dir = build, output-json = BENCH_host_throughput.json (repo root). The JSON
# is committed so the wall-clock trajectory of the simulator is tracked PR over PR; compare a
# working tree against it before merging host-side changes (see EXPERIMENTS.md "Host
# throughput").
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"
out_json="${2:-"${repo_root}/BENCH_host_throughput.json"}"

bench_bin="${build_dir}/bench/bench_host_throughput"
if [ ! -x "${bench_bin}" ]; then
  echo "error: ${bench_bin} not built (cmake --build ${build_dir} --target bench_host_throughput)" >&2
  exit 1
fi

"${bench_bin}" \
  --benchmark_out="${out_json}" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true

echo "wrote ${out_json}"
