#!/usr/bin/env sh
# Runs the benchmark gates and records the committed baselines.
#
#   bench/run_benches.sh [--smoke] [build-dir] [output-json]
#
# Defaults: build-dir = build, output-json = BENCH_host_throughput.json (repo root). Two JSON
# baselines are committed so trajectories are tracked PR over PR:
#
#   BENCH_host_throughput.json — wall-clock speed of the simulator itself (host time). A fresh
#     run is compared against the committed baseline BEFORE overwriting it: more than 10%
#     regression on any benchmark fails (override the threshold with UF_BENCH_THRESHOLD, or
#     set UF_BENCH_ALLOW_REGRESSION=1 to record an accepted slowdown).
#
#   BENCH_fault_storm.json — the fault-around window sweep (simulator virtual time, fully
#     deterministic). Gated on the acceptance criterion: adaptive fault-around must cut
#     post-fork fault-resolution cycles on the Redis update storm by >= 10% vs window=1.
#
#   BENCH_overload.json — the open-loop overload fleet (simulator virtual time, deterministic
#     per seed; the run itself asserts per-seed bit-identical replay). Gated on the §4.10
#     acceptance criteria: goodput at 2x saturation >= 80% of saturation goodput, zero
#     uncontained ENOMEM deaths, and goodput >= committed baseline - 10%.
#
#   BENCH_fragmentation.json — the compaction checkerboard (simulator virtual time, fully
#     deterministic). Gated on the §4.13 acceptance criteria: the incremental background
#     service must recover >= 0.9x the stop-the-world pass's contiguity with a max
#     mutator-excluding pause <= 0.1x the stop-the-world pause.
#
# --smoke: single repetition written to temporary files — verifies every benchmark still runs
# and applies both gates without touching the committed baselines (CI uses this).
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

smoke=0
if [ "${1:-}" = "--smoke" ]; then
  smoke=1
  shift
fi

build_dir="${1:-"${repo_root}/build"}"
host_json="${2:-"${repo_root}/BENCH_host_throughput.json"}"
storm_json="${repo_root}/BENCH_fault_storm.json"
overload_json="${repo_root}/BENCH_overload.json"
threshold="${UF_BENCH_THRESHOLD:-0.10}"
repetitions=3
if [ "${smoke}" = 1 ]; then
  repetitions=1
fi

for bench in bench_host_throughput bench_fault_storm bench_overload bench_fragmentation; do
  if [ ! -x "${build_dir}/bench/${bench}" ]; then
    echo "error: ${build_dir}/bench/${bench} not built (cmake --build ${build_dir} --target ${bench})" >&2
    exit 1
  fi
done

python3_bin="$(command -v python3 || true)"
if [ -z "${python3_bin}" ]; then
  echo "warning: python3 not found; benchmark gates skipped" >&2
fi

# --- host throughput (wall clock) ---------------------------------------------------------------

host_new="$(mktemp -t bench_host.XXXXXX.json)"
"${build_dir}/bench/bench_host_throughput" \
  --benchmark_out="${host_new}" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${repetitions}" \
  --benchmark_report_aggregates_only=true

if [ -n "${python3_bin}" ] && [ -f "${host_json}" ]; then
  echo "host-throughput gate (threshold ${threshold}) vs ${host_json}:"
  if ! "${python3_bin}" "${repo_root}/bench/check_regression.py" compare \
      "${host_json}" "${host_new}" --threshold "${threshold}"; then
    if [ "${UF_BENCH_ALLOW_REGRESSION:-0}" = 1 ]; then
      echo "UF_BENCH_ALLOW_REGRESSION=1: continuing despite regression"
    else
      rm -f "${host_new}"
      exit 1
    fi
  fi
fi

if [ -n "${python3_bin}" ]; then
  # Sharded-host scaling gate (DESIGN.md §4.11): 4-shard ForkFleetThroughput must reach
  # >= 2.5x the 1-shard rate. Skips loudly (exit 0) when the host has < 4 CPUs.
  echo "shard-scaling gate:"
  "${python3_bin}" "${repo_root}/bench/check_regression.py" shard-gate "${host_new}"

  # Demand-paging footprint gate (DESIGN.md §4.12): the 256-worker httpd fleet under demand
  # paging must hold <= 0.5x the eager fleet's resident frames. The counter is simulator
  # frame counts, so the gate is deterministic on any host.
  echo "footprint gate:"
  "${python3_bin}" "${repo_root}/bench/check_regression.py" footprint-gate "${host_new}"
fi

if [ "${smoke}" = 1 ]; then
  rm -f "${host_new}"
else
  mv "${host_new}" "${host_json}"
  echo "wrote ${host_json}"
fi

# --- fault-around window sweep (virtual time, deterministic) ------------------------------------

storm_new="$(mktemp -t bench_storm.XXXXXX.json)"
"${build_dir}/bench/bench_fault_storm" \
  --benchmark_out="${storm_new}" \
  --benchmark_out_format=json

if [ -n "${python3_bin}" ]; then
  echo "fault-storm gate:"
  "${python3_bin}" "${repo_root}/bench/check_regression.py" storm-gate "${storm_new}"
fi

if [ "${smoke}" = 1 ]; then
  rm -f "${storm_new}"
else
  mv "${storm_new}" "${storm_json}"
  echo "wrote ${storm_json}"
fi

# --- fragmentation & incremental compaction (virtual time, deterministic) -----------------------

frag_json="${repo_root}/BENCH_fragmentation.json"
frag_new="$(mktemp -t bench_frag.XXXXXX.json)"
"${build_dir}/bench/bench_fragmentation" \
  --benchmark_filter='FragmentationCompaction' \
  --benchmark_out="${frag_new}" \
  --benchmark_out_format=json

if [ -n "${python3_bin}" ]; then
  echo "fragmentation gate:"
  "${python3_bin}" "${repo_root}/bench/check_regression.py" frag-gate "${frag_new}"
fi

if [ "${smoke}" = 1 ]; then
  rm -f "${frag_new}"
else
  mv "${frag_new}" "${frag_json}"
  echo "wrote ${frag_json}"
fi

# --- overload fleet (virtual time, deterministic per seed) --------------------------------------

overload_new="$(mktemp -t bench_overload.XXXXXX.json)"
UFORK_OVERLOAD_REPLAY_CHECK=1 "${build_dir}/bench/bench_overload" \
  --benchmark_out="${overload_new}" \
  --benchmark_out_format=json

if [ -n "${python3_bin}" ]; then
  echo "overload gate:"
  overload_baseline_args=""
  if [ -f "${overload_json}" ]; then
    overload_baseline_args="--baseline ${overload_json}"
  fi
  # shellcheck disable=SC2086
  "${python3_bin}" "${repo_root}/bench/check_regression.py" overload-gate \
      "${overload_new}" ${overload_baseline_args} --threshold "${threshold}"
fi

if [ "${smoke}" = 1 ]; then
  rm -f "${overload_new}"

  # Sharded-host smoke row (DESIGN.md §4.11): one saturation-rate fleet on a 2-shard host.
  # Verifies the multi-threaded machine survives the overload workload; rows carry a
  # `shards` counter so check_regression.py keys them apart from the 1-shard baselines.
  sharded_new="$(mktemp -t bench_sharded.XXXXXX.json)"
  UFORK_OVERLOAD_SHARDS=2 "${build_dir}/bench/bench_overload" \
    --benchmark_filter='OverloadFleet/uFork/10/' \
    --benchmark_out="${sharded_new}" \
    --benchmark_out_format=json
  rm -f "${sharded_new}"

  echo "smoke run OK (committed baselines untouched)"
else
  mv "${overload_new}" "${overload_json}"
  echo "wrote ${overload_json}"
fi
