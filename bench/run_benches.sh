#!/usr/bin/env sh
# Runs the host-throughput benchmark gate and records the results.
#
#   bench/run_benches.sh [--smoke] [build-dir] [output-json]
#
# Defaults: build-dir = build, output-json = BENCH_host_throughput.json (repo root). The JSON
# is committed so the wall-clock trajectory of the simulator is tracked PR over PR; compare a
# working tree against it before merging host-side changes (see EXPERIMENTS.md "Host
# throughput").
#
# --smoke: single repetition written to a temporary file — verifies every benchmark still runs
# (CI uses this) without touching the committed baseline JSON.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

smoke=0
if [ "${1:-}" = "--smoke" ]; then
  smoke=1
  shift
fi

build_dir="${1:-"${repo_root}/build"}"
out_json="${2:-"${repo_root}/BENCH_host_throughput.json"}"
repetitions=3
if [ "${smoke}" = 1 ]; then
  out_json="$(mktemp -t bench_smoke.XXXXXX.json)"
  repetitions=1
fi

bench_bin="${build_dir}/bench/bench_host_throughput"
if [ ! -x "${bench_bin}" ]; then
  echo "error: ${bench_bin} not built (cmake --build ${build_dir} --target bench_host_throughput)" >&2
  exit 1
fi

"${bench_bin}" \
  --benchmark_out="${out_json}" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${repetitions}" \
  --benchmark_report_aggregates_only=true

echo "wrote ${out_json}"
if [ "${smoke}" = 1 ]; then
  rm -f "${out_json}"
  echo "smoke run OK (baseline JSON untouched)"
fi
