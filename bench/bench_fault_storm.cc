// Fault-storm window sweep — the workload the adaptive fault-around resolver targets.
//
// Two storm shapes, both μFork/CoPA (the system where the trap + PTE fixed costs matter most):
//
//  * RedisUpdateStorm — the Fig. 3 background-save scenario with a live parent (the paper's U4
//    usage: "save concurrently with the main database process"). After BGSAVE forks, the
//    parent rewrites every key with a fresh same-size value — dense sequential CoW write
//    storms through the value blocks — while the child's serialization pass walks every entry
//    capability (CoPA cap-load storm) and bulk-reads the values.
//
//  * ZygoteStorm — the Fig. 6 FaaS pattern: a warm runtime heap forked per request; every
//    child dirties a slice of the warm state page by page (no multi-page access spans, so only
//    the adaptive controller can batch it).
//
// The sweep axis is the fault-around window: arg 0 = adaptive (max 16), otherwise a fixed
// window of that many pages. window=1 is the pre-fault-around resolver and the baseline the
// EXPERIMENTS.md "Fault storm" table normalizes against. Iteration time is the post-fork
// virtual elapsed; `fault_Mcycles` is KernelStats::fault_cycles (trap + resolution charges
// only), the deterministic quantity bench/check_regression.py gates on.
#include "bench/redis_bench_util.h"

namespace ufork {
namespace bench {
namespace {

FaultAroundConfig WindowParam(int64_t arg) {
  FaultAroundConfig fault_around;
  if (arg == 0) {
    fault_around.max_window = kMaxFaultAroundWindow;
    fault_around.adaptive = true;
  } else {
    fault_around.max_window = static_cast<uint32_t>(arg);
    fault_around.adaptive = false;
  }
  return fault_around;
}

struct StormResult {
  Cycles post_fork = 0;  // fork trigger -> storm drained (child reaped)
  KernelStats stats;
};

void ReportStorm(::benchmark::State& state, const StormResult& result) {
  SetIterationCycles(state, result.post_fork);
  state.counters["fault_Mcycles"] =
      static_cast<double>(result.stats.fault_cycles) / 1e6;
  state.counters["faults_taken"] = static_cast<double>(result.stats.faults_taken);
  state.counters["fa_pages"] =
      static_cast<double>(result.stats.pages_resolved_by_faultaround);
  state.counters["pages_copied"] = static_cast<double>(result.stats.pages_copied_on_fault);
  state.counters["pages_reclaimed"] =
      static_cast<double>(result.stats.pages_reclaimed_in_place);
  state.counters["pages_wasted"] =
      static_cast<double>(result.stats.speculative_pages_wasted);
}

// --- Redis background save with a live parent ---------------------------------------------------

StormResult RunRedisUpdateStorm(const SystemConfig& sc, uint64_t entries) {
  StormResult result;
  auto kernel = RunGuestMain(sc, [&result, entries](Guest& g) -> SimTask<void> {
    auto db = MiniRedis::Create(g, /*buckets=*/1024);
    UF_CHECK(db.ok());
    const std::vector<std::byte> blob(kRedisEntryBytes, std::byte{0x5c});
    for (uint64_t i = 0; i < entries; ++i) {
      UF_CHECK(db->Set("key:" + std::to_string(i), blob).ok());
    }
    const Cycles start = g.kernel().sched().Now();
    GuestFn child_fn = [](Guest& cg) -> SimTask<void> {
      auto child_db = MiniRedis::Attach(cg);
      UF_CHECK(child_db.ok());
      auto written = co_await child_db->Save("/storm.rdb.tmp");
      UF_CHECK(written.ok());
      UF_CHECK((co_await cg.Rename("/storm.rdb.tmp", "/storm.rdb")).ok());
      co_await cg.Exit(0);
    };
    auto child = co_await g.Fork(std::move(child_fn));
    UF_CHECK(child.ok());
    // The parent keeps serving writes during the save: every key is rewritten with a
    // same-size value, which MiniRedis updates in place — a CoW storm through the value
    // blocks plus CoPA cap-chases down the bucket chains.
    const std::vector<std::byte> update(kRedisEntryBytes, std::byte{0xd7});
    for (uint64_t i = 0; i < entries; ++i) {
      UF_CHECK(db->Set("key:" + std::to_string(i), update).ok());
    }
    auto waited = co_await g.Wait();
    UF_CHECK(waited.ok() && waited->status == 0);
    result.post_fork = g.kernel().sched().Now() - start;
    // The dump must hold the pre-fork snapshot regardless of the parent's updates.
    auto info = co_await db->VerifyDump("/storm.rdb");
    UF_CHECK_MSG(info.ok() && info->entries == entries, "storm snapshot corrupt");
    co_return;
  });
  result.stats = kernel->stats();
  return result;
}

void FaultStormRedis(::benchmark::State& state) {
  SystemConfig sc;
  sc.system = System::kUfork;
  sc.layout = RedisLayout();
  sc.fault_around = WindowParam(state.range(0));
  for (auto _ : state) {
    const StormResult result = RunRedisUpdateStorm(sc, /*entries=*/20);  // 2 MB database
    ReportStorm(state, result);
  }
}

// --- FaaS zygote storm --------------------------------------------------------------------------

inline constexpr uint64_t kZygoteWarmBytes = 2 * kMiB;
inline constexpr uint64_t kZygoteTouchBytes = 256 * kKiB;  // per-request dirty slice
inline constexpr int kZygoteRequests = 8;

StormResult RunZygoteStorm(const SystemConfig& sc) {
  StormResult result;
  auto kernel = RunGuestMain(sc, [&result](Guest& g) -> SimTask<void> {
    auto warm = g.Malloc(kZygoteWarmBytes);
    UF_CHECK(warm.ok());
    std::vector<std::byte> fill(kZygoteWarmBytes, std::byte{0x42});
    UF_CHECK(g.WriteBytes(*warm, warm->address(), fill).ok());
    UF_CHECK(g.GotStore(kGotSlotFirstUser, *warm).ok());
    const Cycles start = g.kernel().sched().Now();
    for (int request = 0; request < kZygoteRequests; ++request) {
      GuestFn child_fn = [](Guest& cg) -> SimTask<void> {
        auto cap = cg.GotLoad(kGotSlotFirstUser);
        UF_CHECK(cap.ok());
        // Page-at-a-time dirtying: no access span for the resolver to lean on, so batching
        // has to come from the adaptive controller.
        std::vector<std::byte> chunk(kPageSize, std::byte{0x99});
        for (uint64_t off = 0; off < kZygoteTouchBytes; off += kPageSize) {
          UF_CHECK(cg.WriteBytes(*cap, cap->address() + off, chunk).ok());
        }
        co_await cg.Exit(0);
      };
      auto child = co_await g.Fork(std::move(child_fn));
      UF_CHECK(child.ok());
      auto waited = co_await g.Wait();
      UF_CHECK(waited.ok() && waited->status == 0);
    }
    result.post_fork = g.kernel().sched().Now() - start;
    co_return;
  });
  result.stats = kernel->stats();
  return result;
}

void FaultStormZygote(::benchmark::State& state) {
  SystemConfig sc;
  sc.system = System::kUfork;
  sc.layout = FaasLayout();
  sc.fault_around = WindowParam(state.range(0));
  for (auto _ : state) {
    const StormResult result = RunZygoteStorm(sc);
    ReportStorm(state, result);
  }
}

#define UF_STORM_SWEEP(fn)                                                      \
  BENCHMARK(fn)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Iterations(2) \
      ->UseManualTime()->Unit(::benchmark::kMillisecond)

UF_STORM_SWEEP(FaultStormRedis);
UF_STORM_SWEEP(FaultStormZygote);

}  // namespace
}  // namespace bench
}  // namespace ufork

BENCHMARK_MAIN();
