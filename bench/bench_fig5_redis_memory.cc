// Figure 5 — Redis memory consumption (MB).
//
// Measures the memory consumed by the forked Redis (BGSAVE) child — its unique set size plus
// backend per-process overheads — right after it finishes serializing, while it is still
// alive. Paper results to reproduce (shape), at a 100 MB database:
//   * μFork/CoPA:      ~6 MB  (only pointer-bearing pages were copied);
//   * μFork/CoA:     ~101 MB  (every page the child *accessed* was copied);
//   * μFork/FullCopy:~144 MB  (the whole region incl. the 136.7 MB static heap);
//   * CheriBSD:       ~56 MB  (allocator dirtying, per the paper's explanation).
#include "bench/redis_bench_util.h"

namespace ufork {
namespace bench {
namespace {

void RedisChildMemory(::benchmark::State& state, System system, ForkStrategy strategy,
                      double dirty_fraction) {
  const uint64_t db_bytes = static_cast<uint64_t>(state.range(0)) * 100 * kKiB;
  SystemConfig sc;
  sc.system = system;
  sc.layout = RedisLayout();
  sc.strategy = strategy;
  sc.mas_allocator_dirty_fraction = dirty_fraction;
  sc.phys_mem_bytes = 4 * kGiB;  // the full-copy strategy holds two 140 MB images
  for (auto _ : state) {
    const RedisRunResult result = RunRedisBgSave(sc, db_bytes);
    // The figure's metric is memory, not time; report both.
    SetIterationCycles(state, result.save_elapsed);
    state.counters["child_MB"] = result.child_uss_mb;
    state.counters["db_MB"] = static_cast<double>(db_bytes) / static_cast<double>(kMiB);
  }
}

#define UF_FIG5(name, ...)                               \
  BENCHMARK_CAPTURE(RedisChildMemory, name, __VA_ARGS__) \
      ->RangeMultiplier(10)                              \
      ->Range(1, 1000)                                   \
      ->Iterations(2)                                    \
      ->UseManualTime()                                  \
      ->Unit(::benchmark::kMillisecond)

UF_FIG5(uFork_CoPA, System::kUfork, ForkStrategy::kCopa, 0.0);
UF_FIG5(uFork_CoA, System::kUfork, ForkStrategy::kCoa, 0.0);
UF_FIG5(uFork_FullCopy, System::kUfork, ForkStrategy::kFull, 0.0);
UF_FIG5(CheriBSD, System::kCheriBsd, ForkStrategy::kCopa, 0.55);

}  // namespace
}  // namespace bench
}  // namespace ufork

BENCHMARK_MAIN();
