// Figure 6 — FaaS function throughput (functions/second).
//
// The Zygote pre-warming pattern: a coordinator (pinned to one core, as in the paper's setup:
// 1 of the 4 Morello cores coordinates) forks the warm runtime for every request; executors
// run FunctionBench float_operation on the remaining 1-3 cores. Paper result to reproduce
// (shape): throughput scales with worker cores and μFork sustains ~24% more functions/s than
// CheriBSD because the benchmark is fork-latency-bound; TOCTTOU protection is negligible here
// (the function makes no buffer-passing syscalls).
#include "bench/bench_common.h"
#include "src/apps/faas.h"

namespace ufork {
namespace bench {
namespace {

void FaasThroughput(::benchmark::State& state, System system, IsolationLevel isolation) {
  const int worker_cores = static_cast<int>(state.range(0));
  SystemConfig sc;
  sc.system = system;
  sc.layout = FaasLayout();
  sc.cores = 1 + worker_cores;  // coordinator core + function cores
  sc.isolation = isolation;
  for (auto _ : state) {
    ZygoteResult result;
    RunGuestMain(
        sc,
        [&result, worker_cores](Guest& g) -> SimTask<void> {
          UF_CHECK(InitializeZygoteRuntime(g).ok());
          ZygoteParams params;
          params.window = Milliseconds(100);  // virtual-time window; rate extrapolates to 10 s
          params.worker_cores = worker_cores;
          params.float_iterations = 22'000;
          co_await ZygoteCoordinator(g, params, &result);
        },
        /*pinned_core=*/0);
    SetIterationCycles(state, result.elapsed);
    state.counters["functions_per_s"] = result.FunctionsPerSecond();
    state.counters["completed"] = static_cast<double>(result.functions_completed);
  }
}

#define UF_FIG6(name, ...)                              \
  BENCHMARK_CAPTURE(FaasThroughput, name, __VA_ARGS__) \
      ->DenseRange(1, 3, 1)                             \
      ->Iterations(2)                                   \
      ->UseManualTime()                                 \
      ->Unit(::benchmark::kMillisecond)

UF_FIG6(uFork, System::kUfork, IsolationLevel::kFull);
UF_FIG6(uFork_NoTocttou, System::kUfork, IsolationLevel::kFault);
UF_FIG6(CheriBSD, System::kCheriBsd, IsolationLevel::kFull);

}  // namespace
}  // namespace bench
}  // namespace ufork

BENCHMARK_MAIN();
