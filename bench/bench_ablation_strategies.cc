// Ablation — design choices beyond the paper's headline figures:
//   * all four copy strategies side by side (including the intentionally unsound UnsafeCoW) on
//     one workload, reporting latency, child residency and pages copied;
//   * the cost of each isolation level (§3.6's parameterized isolation) on a syscall-heavy
//     pipe workload.
#include "bench/bench_common.h"
#include "bench/redis_bench_util.h"
#include "src/apps/unixbench.h"

namespace ufork {
namespace bench {
namespace {

void StrategyAblation(::benchmark::State& state, ForkStrategy strategy) {
  SystemConfig sc;
  sc.layout = RedisLayout();
  sc.strategy = strategy;
  sc.phys_mem_bytes = 4 * kGiB;
  const uint64_t db_bytes = 10 * kMiB;
  for (auto _ : state) {
    const RedisRunResult result = RunRedisBgSave(sc, db_bytes);
    SetIterationCycles(state, result.fork_latency);
    state.counters["fork_us"] = ToMicroseconds(result.fork_latency);
    state.counters["save_ms"] = ToMilliseconds(result.save_elapsed);
    state.counters["child_MB"] = result.child_uss_mb;
  }
}

BENCHMARK_CAPTURE(StrategyAblation, CoPA, ForkStrategy::kCopa)
    ->Iterations(2)->UseManualTime()->Unit(::benchmark::kMicrosecond);
BENCHMARK_CAPTURE(StrategyAblation, CoA, ForkStrategy::kCoa)
    ->Iterations(2)->UseManualTime()->Unit(::benchmark::kMicrosecond);
BENCHMARK_CAPTURE(StrategyAblation, FullCopy, ForkStrategy::kFull)
    ->Iterations(2)->UseManualTime()->Unit(::benchmark::kMicrosecond);
BENCHMARK_CAPTURE(StrategyAblation, UnsafeCoW, ForkStrategy::kUnsafeCow)
    ->Iterations(2)->UseManualTime()->Unit(::benchmark::kMicrosecond);

// Isolation-level cost on a syscall-heavy path (pipe ping-pong): kNone disables capability
// confinement and kernel checks, kFault adds them, kFull adds TOCTTOU bounce buffering.
void IsolationAblation(::benchmark::State& state, IsolationLevel isolation) {
  SystemConfig sc;
  sc.layout = HelloLayout();
  sc.isolation = isolation;
  for (auto _ : state) {
    Context1Result result;
    RunGuestMain(sc, [&result](Guest& g) -> SimTask<void> {
      co_await UnixbenchContext1(g, 20'000, &result);
    });
    SetIterationCycles(state, result.elapsed);
    state.counters["total_ms"] = ToMilliseconds(result.elapsed);
  }
}

BENCHMARK_CAPTURE(IsolationAblation, none, IsolationLevel::kNone)
    ->Iterations(2)->UseManualTime()->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(IsolationAblation, fault, IsolationLevel::kFault)
    ->Iterations(2)->UseManualTime()->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(IsolationAblation, full, IsolationLevel::kFull)
    ->Iterations(2)->UseManualTime()->Unit(::benchmark::kMillisecond);

// Unixbench execl analogue: exec-chain cost per image replacement in the SAS.
void ExeclAblation(::benchmark::State& state) {
  SystemConfig sc;
  sc.layout = HelloLayout();
  for (auto _ : state) {
    auto kernel = MakeSystem(sc);
    RegisterExeclHop(*kernel);
    ExeclResult result;
    auto pid = kernel->Spawn(MakeGuestEntry([&result](Guest& g) -> SimTask<void> {
                               co_await UnixbenchExecl(g, 200, &result);
                             }),
                             "execl");
    UF_CHECK(pid.ok());
    kernel->Run();
    SetIterationCycles(state, result.elapsed);
    state.counters["per_exec_us"] = result.PerExecUs();
  }
}
BENCHMARK(ExeclAblation)->Iterations(2)->UseManualTime()->Unit(::benchmark::kMillisecond);

// Fork latency as a function of the image (heap) size: the design predicts a small fixed cost
// plus a linear per-page PTE-duplication term — this sweep exposes the slope directly.
void ForkLatencyVsImageSize(::benchmark::State& state) {
  const uint64_t heap_mb = static_cast<uint64_t>(state.range(0));
  SystemConfig sc;
  sc.layout.heap_size = heap_mb * kMiB;
  sc.phys_mem_bytes = 3 * kGiB;
  for (auto _ : state) {
    auto kernel = MakeSystem(sc);
    Cycles latency = 0;
    auto pid = kernel->Spawn(
        MakeGuestEntry([&latency](Guest& g) -> SimTask<void> {
          auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
            co_await cg.Exit(0);
          });
          UF_CHECK(child.ok());
          latency = g.kernel().FindUproc(*child)->fork_stats.latency;
          (void)co_await g.Wait();
        }),
        "sweep");
    UF_CHECK(pid.ok());
    kernel->Run();
    SetIterationCycles(state, latency);
    state.counters["fork_us"] = ToMicroseconds(latency);
    state.counters["heap_MB"] = static_cast<double>(heap_mb);
  }
}
BENCHMARK(ForkLatencyVsImageSize)
    ->RangeMultiplier(4)->Range(1, 256)
    ->Iterations(2)->UseManualTime()->Unit(::benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace ufork

BENCHMARK_MAIN();
