// Figure 3 — Redis DB overall save times (ms).
//
// Populates a Redis database with 100 KB entries at sizes from 100 KB to 100 MB, triggers a
// background save to the ramdisk, and reports the time from the BGSAVE trigger to dump
// completion. Paper result to reproduce (shape): μFork beats CheriBSD across the range —
// 1.9× at 100 KB (1.8 vs 3.4 ms), narrowing to 1.4× at 100 MB (109 vs 158 ms), because fork
// latency dominates at small sizes while serialization bandwidth dominates at large ones.
#include "bench/redis_bench_util.h"

namespace ufork {
namespace bench {
namespace {

void RedisSave(::benchmark::State& state, System system) {
  const uint64_t db_bytes = static_cast<uint64_t>(state.range(0)) * 100 * kKiB;
  SystemConfig sc;
  sc.system = system;
  sc.layout = RedisLayout();
  sc.mas_allocator_dirty_fraction = 0.55;  // jemalloc dirtying model, see EXPERIMENTS.md
  for (auto _ : state) {
    const RedisRunResult result = RunRedisBgSave(sc, db_bytes);
    SetIterationCycles(state, result.save_elapsed);
    state.counters["save_ms"] = ToMilliseconds(result.save_elapsed);
    state.counters["db_MB"] = static_cast<double>(db_bytes) / static_cast<double>(kMiB);
  }
}

// state.range(0) is the database size in units of one 100 KB entry: 1 -> 100 KB ... 1000 -> 100 MB.
BENCHMARK_CAPTURE(RedisSave, uFork, System::kUfork)
    ->RangeMultiplier(10)
    ->Range(1, 1000)
    ->Iterations(3)
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(RedisSave, CheriBSD, System::kCheriBsd)
    ->RangeMultiplier(10)
    ->Range(1, 1000)
    ->Iterations(3)
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ufork

BENCHMARK_MAIN();
