#!/usr/bin/env python3
"""Benchmark gates for bench/run_benches.sh (stdlib only).

Subcommands:

  compare BASELINE.json CANDIDATE.json [--threshold 0.10]
      Compares google-benchmark JSON outputs by run_name. Fails (exit 1) if any benchmark's
      candidate real_time exceeds the baseline by more than the threshold. Aggregate entries
      are preferred (median, then mean); raw iteration entries are averaged. Benchmarks
      present in only one file are reported but never fail the gate, so adding or retiring a
      benchmark does not break CI.

      Rows carrying a `shards` counter != 1 (sharded-host runs, DESIGN.md §4.11) are keyed
      as "<run_name>@shards=N" so they never collide with — and never silently regress
      against — a 1-shard baseline row of the same name.

  storm-gate STORM.json [--improvement 0.10] [--benchmark FaultStormRedis]
              [--counter fault_Mcycles] [--baseline-arg 1] [--candidate-arg 0]
      Checks the fault-around acceptance criterion on bench_fault_storm output: the adaptive
      sweep point (arg 0) must improve the given counter by at least `improvement` relative
      to the window=1 point. The counter is simulator virtual cycles, so this gate is
      deterministic and safe to run on any host.

  overload-gate OVERLOAD.json [--baseline BENCH_overload.json] [--min-ratio 0.8]
              [--threshold 0.10] [--allow-crashes]
      Checks the overload-survival acceptance criteria on bench_overload output, per system
      row with admission armed (rows named *_NoAdmission are the ablation and never gated):
        1. crashed == 0 at both rate points (no uncontained ENOMEM deaths; waived by
           --allow-crashes for chaos-armed soaks, where injected faults do kill children),
        2. goodput at 2x (arg 20) >= min-ratio * goodput at 1x (arg 10): admission control
           sheds load instead of collapsing,
        3. if a baseline file is given, each row's goodput >= baseline - threshold.
      Counters are simulator virtual time, so 1 and 2 are deterministic per seed.
      Sharded rows (`shards` counter != 1) are keyed separately, as in compare.

  shard-gate HOST.json [--speedup 2.5] [--min-cpus 4] [--benchmark ForkFleetThroughput]
              [--counter forks_per_hsec] [--shards 4]
      Checks the sharded-host scaling acceptance criterion (DESIGN.md §4.11): the
      --shards-shard row of the given benchmark must beat the 1-shard row's throughput
      counter by at least the --speedup factor. Wall-clock scaling only exists with real
      cores: when the recording host's context.num_cpus is below --min-cpus the gate
      SKIPS loudly (exit 0) instead of failing, so single-core CI containers stay green.

  frag-gate FRAG.json [--min-recovery 0.9] [--max-pause-ratio 0.1] [--arg 32]
      Checks the incremental-compaction acceptance criteria (DESIGN.md §4.13) on
      bench_fragmentation output, comparing the FragmentationCompactionIncremental row
      against the stop-the-world FragmentationCompaction row at the same checkerboard size:
        1. recovered contiguity (largest_free_after - largest_free_before) must reach at
           least --min-recovery times the stop-the-world pass's recovery,
        2. the longest mutator-excluding pause (pause_cycles_max, one budgeted quantum)
           must stay at or below --max-pause-ratio times the stop-the-world pause.
      All counters are simulator virtual time / simulator bytes — deterministic on any host.

  footprint-gate HOST.json [--max-ratio 0.5] [--benchmark HttpdFleetFootprint]
              [--counter resident_frames] [--eager-arg 0] [--demand-arg 1]
      Checks the demand-paging acceptance criterion (DESIGN.md §4.12) on bench_host_throughput
      output: the demand row (arg 1) of the 256-worker httpd fleet must hold at most
      --max-ratio times the eager row's (arg 0) resident frames. The counter is a simulator
      frame count sampled at the fleet's plateau — deterministic on any host.
"""

import argparse
import json
import sys


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def load_benchmarks(path):
    return load_doc(path).get("benchmarks", [])


def shard_key(run_name, entry):
    """Keys sharded-host rows separately so they never collide with 1-shard baselines."""
    shards = entry.get("shards")
    if shards is not None and float(shards) != 1.0:
        return f"{run_name}@shards={int(float(shards))}"
    return run_name


def representative_times(entries):
    """Maps run_name -> representative real_time (aggregate median > mean > raw average)."""
    by_run = {}
    for entry in entries:
        run_name = shard_key(entry.get("run_name", entry.get("name", "")), entry)
        by_run.setdefault(run_name, []).append(entry)
    times = {}
    for run_name, group in by_run.items():
        aggregates = {e.get("aggregate_name"): e for e in group if e.get("run_type") == "aggregate"}
        if "median" in aggregates:
            times[run_name] = float(aggregates["median"]["real_time"])
        elif "mean" in aggregates:
            times[run_name] = float(aggregates["mean"]["real_time"])
        else:
            raw = [float(e["real_time"]) for e in group if e.get("run_type", "iteration") == "iteration"]
            if raw:
                times[run_name] = sum(raw) / len(raw)
    return times


def cmd_compare(args):
    base = representative_times(load_benchmarks(args.baseline))
    cand = representative_times(load_benchmarks(args.candidate))
    failures = []
    for run_name in sorted(base):
        if run_name not in cand:
            print(f"  (skip) {run_name}: not in candidate")
            continue
        ratio = cand[run_name] / base[run_name] if base[run_name] > 0 else 1.0
        marker = "OK"
        if ratio > 1.0 + args.threshold:
            marker = "REGRESSED"
            failures.append(run_name)
        print(f"  [{marker}] {run_name}: {base[run_name]:.3f} -> {cand[run_name]:.3f} "
              f"({(ratio - 1.0) * 100.0:+.1f}%)")
    for run_name in sorted(set(cand) - set(base)):
        print(f"  (new) {run_name}: no baseline")
    if failures:
        print(f"FAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.threshold * 100.0:.0f}% vs {args.baseline}")
        return 1
    print(f"host-throughput gate OK ({len(base)} baseline benchmarks, "
          f"threshold {args.threshold * 100.0:.0f}%)")
    return 0


def find_counter(entries, prefix, counter):
    for entry in entries:
        if entry.get("run_type") == "aggregate":
            continue
        if entry.get("run_name", entry.get("name", "")).startswith(prefix):
            if counter not in entry:
                break
            return float(entry[counter])
    raise SystemExit(f"error: no iteration entry matching '{prefix}' with counter '{counter}'")


def cmd_storm_gate(args):
    entries = load_benchmarks(args.storm)
    base = find_counter(entries, f"{args.benchmark}/{args.baseline_arg}/", args.counter)
    cand = find_counter(entries, f"{args.benchmark}/{args.candidate_arg}/", args.counter)
    improvement = (base - cand) / base if base > 0 else 0.0
    print(f"  {args.benchmark} {args.counter}: window=1 {base:.4f} -> adaptive {cand:.4f} "
          f"({improvement * 100.0:+.1f}% improvement)")
    if improvement < args.improvement:
        print(f"FAIL: adaptive fault-around must improve {args.counter} by at least "
              f"{args.improvement * 100.0:.0f}% over window=1")
        return 1
    print("fault-storm gate OK")
    return 0


def overload_rows(entries):
    """Maps (capture_name, rate_arg) -> iteration entry for OverloadFleet rows.

    Sharded rows get the "@shards=N" suffix on the capture name so a multi-shard smoke
    run never masquerades as (or gates against) the 1-shard baseline row.
    """
    rows = {}
    for entry in entries:
        if entry.get("run_type") == "aggregate":
            continue
        run_name = entry.get("run_name", entry.get("name", ""))
        parts = run_name.split("/")
        if len(parts) < 3 or parts[0] != "OverloadFleet":
            continue
        rows[(shard_key(parts[1], entry), parts[2])] = entry
    return rows


def cmd_overload_gate(args):
    rows = overload_rows(load_benchmarks(args.overload))
    baseline = overload_rows(load_benchmarks(args.baseline)) if args.baseline else {}
    # _NoAdmission rows are the ablation; @shards= rows are sharded-host smoke runs (their
    # goodput depends on host core count, not the admission policy under test). Neither gates.
    systems = sorted({name for (name, _) in rows
                      if not name.endswith("_NoAdmission") and "@shards=" not in name})
    if not systems:
        raise SystemExit("error: no gated OverloadFleet rows found")
    failures = []
    for system in systems:
        low = rows.get((system, "10"))
        high = rows.get((system, "20"))
        if low is None or high is None:
            failures.append(f"{system}: missing a rate point (need args 10 and 20)")
            continue
        crashed = float(low.get("crashed", 0)) + float(high.get("crashed", 0))
        if crashed > 0 and not args.allow_crashes:
            failures.append(f"{system}: {crashed:.0f} uncontained child death(s) under overload")
        goodput_1x = float(low["goodput_rps"])
        goodput_2x = float(high["goodput_rps"])
        ratio = goodput_2x / goodput_1x if goodput_1x > 0 else 0.0
        marker = "OK" if ratio >= args.min_ratio else "FAIL"
        if ratio < args.min_ratio:
            failures.append(f"{system}: goodput at 2x is {ratio:.2f}x of saturation "
                            f"(need >= {args.min_ratio:.2f}x)")
        print(f"  [{marker}] {system}: goodput 1x {goodput_1x:.0f} rps, 2x {goodput_2x:.0f} rps "
              f"({ratio:.2f}x), crashed {crashed:.0f}")
        for arg in ("10", "20"):
            base = baseline.get((system, arg))
            if base is None:
                continue
            base_goodput = float(base["goodput_rps"])
            cand_goodput = float(rows[(system, arg)]["goodput_rps"])
            if base_goodput > 0 and cand_goodput < base_goodput * (1.0 - args.threshold):
                failures.append(f"{system}/{arg}: goodput {cand_goodput:.0f} rps regressed more "
                                f"than {args.threshold * 100.0:.0f}% vs baseline "
                                f"{base_goodput:.0f} rps")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"overload gate OK ({len(systems)} system(s))")
    return 0


def find_rate(entries, prefix, counter):
    """Like find_counter, but tolerates aggregate-only output (repetitions + median)."""
    groups = {}
    for entry in entries:
        run_name = entry.get("run_name", entry.get("name", ""))
        if run_name.startswith(prefix) and counter in entry:
            groups.setdefault(entry.get("aggregate_name", "iteration"), []).append(
                float(entry[counter]))
    for kind in ("median", "mean", "iteration"):
        if kind in groups:
            return sum(groups[kind]) / len(groups[kind])
    raise SystemExit(f"error: no entry matching '{prefix}' with counter '{counter}'")


def cmd_shard_gate(args):
    doc = load_doc(args.host)
    num_cpus = int(doc.get("context", {}).get("num_cpus", 0))
    if num_cpus < args.min_cpus:
        print(f"shard gate SKIPPED: recording host has {num_cpus} CPU(s), need >= "
              f"{args.min_cpus} for wall-clock shard scaling to exist. Re-record "
              f"BENCH_host_throughput.json on a multi-core host to arm this gate.")
        return 0
    entries = doc.get("benchmarks", [])
    base = find_rate(entries, f"{args.benchmark}/1/", args.counter)
    cand = find_rate(entries, f"{args.benchmark}/{args.shards}/", args.counter)
    speedup = cand / base if base > 0 else 0.0
    print(f"  {args.benchmark} {args.counter}: 1 shard {base:.0f}, {args.shards} shards "
          f"{cand:.0f} ({speedup:.2f}x, host has {num_cpus} CPUs)")
    if speedup < args.speedup:
        print(f"FAIL: {args.shards}-shard host must reach >= {args.speedup:.1f}x the 1-shard "
              f"{args.counter} on a >= {args.min_cpus}-core host")
        return 1
    print("shard gate OK")
    return 0


def find_arg_row(entries, benchmark, arg, counter):
    """Representative counter value for the `<benchmark>/<arg>` row (exact-arg match, so
    arg 1 never swallows arg 16; aggregates preferred as in find_rate)."""
    name = f"{benchmark}/{arg}"
    groups = {}
    for entry in entries:
        run_name = entry.get("run_name", entry.get("name", ""))
        if (run_name == name or run_name.startswith(name + "/")) and counter in entry:
            groups.setdefault(entry.get("aggregate_name", "iteration"), []).append(
                float(entry[counter]))
    for kind in ("median", "mean", "iteration"):
        if kind in groups:
            return sum(groups[kind]) / len(groups[kind])
    raise SystemExit(f"error: no entry matching '{name}' with counter '{counter}'")


def cmd_footprint_gate(args):
    entries = load_benchmarks(args.host)
    eager = find_arg_row(entries, args.benchmark, args.eager_arg, args.counter)
    demand = find_arg_row(entries, args.benchmark, args.demand_arg, args.counter)
    ratio = demand / eager if eager > 0 else 1.0
    print(f"  {args.benchmark} {args.counter}: eager {eager:.0f}, demand {demand:.0f} "
          f"({ratio:.2f}x)")
    if ratio > args.max_ratio:
        print(f"FAIL: the demand-paging fleet must hold <= {args.max_ratio:.2f}x the eager "
              f"fleet's {args.counter}")
        return 1
    print(f"footprint gate OK (demand/eager = {ratio:.2f}, limit {args.max_ratio:.2f})")
    return 0


def cmd_frag_gate(args):
    entries = load_benchmarks(args.frag)
    stw = "FragmentationCompaction"
    inc = "FragmentationCompactionIncremental"
    rows = {}
    for name in (stw, inc):
        rows[name] = {counter: find_arg_row(entries, name, args.arg, counter)
                      for counter in ("largest_free_before", "largest_free_after",
                                      "pause_cycles_max")}
    stw_recovered = rows[stw]["largest_free_after"] - rows[stw]["largest_free_before"]
    inc_recovered = rows[inc]["largest_free_after"] - rows[inc]["largest_free_before"]
    failures = []
    if stw_recovered <= 0:
        failures.append("stop-the-world pass recovered no contiguity; the checkerboard "
                        "workload is broken")
    recovery = inc_recovered / stw_recovered if stw_recovered > 0 else 0.0
    stw_pause = rows[stw]["pause_cycles_max"]
    inc_pause = rows[inc]["pause_cycles_max"]
    pause_ratio = inc_pause / stw_pause if stw_pause > 0 else 0.0
    print(f"  {stw}/{args.arg}: recovered {stw_recovered / 1024.0 / 1024.0:.1f} MiB contiguity "
          f"in one {stw_pause:.0f}-cycle pause")
    print(f"  {inc}/{args.arg}: recovered {inc_recovered / 1024.0 / 1024.0:.1f} MiB "
          f"({recovery:.2f}x), max quantum pause {inc_pause:.0f} cycles "
          f"({pause_ratio:.3f}x the stop-the-world pause)")
    if stw_recovered > 0 and recovery < args.min_recovery:
        failures.append(f"incremental compaction recovered only {recovery:.2f}x the "
                        f"stop-the-world contiguity (need >= {args.min_recovery:.2f}x)")
    if pause_ratio > args.max_pause_ratio:
        failures.append(f"incremental max pause is {pause_ratio:.3f}x the stop-the-world "
                        f"pause (need <= {args.max_pause_ratio:.2f}x)")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"fragmentation gate OK (recovery {recovery:.2f}x >= {args.min_recovery:.2f}x, "
          f"pause {pause_ratio:.3f}x <= {args.max_pause_ratio:.2f}x)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="cmd", required=True)

    compare = sub.add_parser("compare")
    compare.add_argument("baseline")
    compare.add_argument("candidate")
    compare.add_argument("--threshold", type=float, default=0.10)
    compare.set_defaults(fn=cmd_compare)

    storm = sub.add_parser("storm-gate")
    storm.add_argument("storm")
    storm.add_argument("--improvement", type=float, default=0.10)
    storm.add_argument("--benchmark", default="FaultStormRedis")
    storm.add_argument("--counter", default="fault_Mcycles")
    storm.add_argument("--baseline-arg", default="1")
    storm.add_argument("--candidate-arg", default="0")
    storm.set_defaults(fn=cmd_storm_gate)

    overload = sub.add_parser("overload-gate")
    overload.add_argument("overload")
    overload.add_argument("--baseline", default=None)
    overload.add_argument("--min-ratio", type=float, default=0.8)
    overload.add_argument("--threshold", type=float, default=0.10)
    overload.add_argument("--allow-crashes", action="store_true")
    overload.set_defaults(fn=cmd_overload_gate)

    shard = sub.add_parser("shard-gate")
    shard.add_argument("host")
    shard.add_argument("--speedup", type=float, default=2.5)
    shard.add_argument("--min-cpus", type=int, default=4)
    shard.add_argument("--benchmark", default="ForkFleetThroughput")
    shard.add_argument("--counter", default="forks_per_hsec")
    shard.add_argument("--shards", default="4")
    shard.set_defaults(fn=cmd_shard_gate)

    frag = sub.add_parser("frag-gate")
    frag.add_argument("frag")
    frag.add_argument("--min-recovery", type=float, default=0.9)
    frag.add_argument("--max-pause-ratio", type=float, default=0.1)
    frag.add_argument("--arg", default="32")
    frag.set_defaults(fn=cmd_frag_gate)

    footprint = sub.add_parser("footprint-gate")
    footprint.add_argument("host")
    footprint.add_argument("--max-ratio", type=float, default=0.5)
    footprint.add_argument("--benchmark", default="HttpdFleetFootprint")
    footprint.add_argument("--counter", default="resident_frames")
    footprint.add_argument("--eager-arg", default="0")
    footprint.add_argument("--demand-arg", default="1")
    footprint.set_defaults(fn=cmd_footprint_gate)

    args = parser.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
