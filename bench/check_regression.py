#!/usr/bin/env python3
"""Benchmark gates for bench/run_benches.sh (stdlib only).

Two subcommands:

  compare BASELINE.json CANDIDATE.json [--threshold 0.10]
      Compares google-benchmark JSON outputs by run_name. Fails (exit 1) if any benchmark's
      candidate real_time exceeds the baseline by more than the threshold. Aggregate entries
      are preferred (median, then mean); raw iteration entries are averaged. Benchmarks
      present in only one file are reported but never fail the gate, so adding or retiring a
      benchmark does not break CI.

  storm-gate STORM.json [--improvement 0.10] [--benchmark FaultStormRedis]
              [--counter fault_Mcycles] [--baseline-arg 1] [--candidate-arg 0]
      Checks the fault-around acceptance criterion on bench_fault_storm output: the adaptive
      sweep point (arg 0) must improve the given counter by at least `improvement` relative
      to the window=1 point. The counter is simulator virtual cycles, so this gate is
      deterministic and safe to run on any host.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("benchmarks", [])


def representative_times(entries):
    """Maps run_name -> representative real_time (aggregate median > mean > raw average)."""
    by_run = {}
    for entry in entries:
        run_name = entry.get("run_name", entry.get("name", ""))
        by_run.setdefault(run_name, []).append(entry)
    times = {}
    for run_name, group in by_run.items():
        aggregates = {e.get("aggregate_name"): e for e in group if e.get("run_type") == "aggregate"}
        if "median" in aggregates:
            times[run_name] = float(aggregates["median"]["real_time"])
        elif "mean" in aggregates:
            times[run_name] = float(aggregates["mean"]["real_time"])
        else:
            raw = [float(e["real_time"]) for e in group if e.get("run_type", "iteration") == "iteration"]
            if raw:
                times[run_name] = sum(raw) / len(raw)
    return times


def cmd_compare(args):
    base = representative_times(load_benchmarks(args.baseline))
    cand = representative_times(load_benchmarks(args.candidate))
    failures = []
    for run_name in sorted(base):
        if run_name not in cand:
            print(f"  (skip) {run_name}: not in candidate")
            continue
        ratio = cand[run_name] / base[run_name] if base[run_name] > 0 else 1.0
        marker = "OK"
        if ratio > 1.0 + args.threshold:
            marker = "REGRESSED"
            failures.append(run_name)
        print(f"  [{marker}] {run_name}: {base[run_name]:.3f} -> {cand[run_name]:.3f} "
              f"({(ratio - 1.0) * 100.0:+.1f}%)")
    for run_name in sorted(set(cand) - set(base)):
        print(f"  (new) {run_name}: no baseline")
    if failures:
        print(f"FAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.threshold * 100.0:.0f}% vs {args.baseline}")
        return 1
    print(f"host-throughput gate OK ({len(base)} baseline benchmarks, "
          f"threshold {args.threshold * 100.0:.0f}%)")
    return 0


def find_counter(entries, prefix, counter):
    for entry in entries:
        if entry.get("run_type") == "aggregate":
            continue
        if entry.get("run_name", entry.get("name", "")).startswith(prefix):
            if counter not in entry:
                break
            return float(entry[counter])
    raise SystemExit(f"error: no iteration entry matching '{prefix}' with counter '{counter}'")


def cmd_storm_gate(args):
    entries = load_benchmarks(args.storm)
    base = find_counter(entries, f"{args.benchmark}/{args.baseline_arg}/", args.counter)
    cand = find_counter(entries, f"{args.benchmark}/{args.candidate_arg}/", args.counter)
    improvement = (base - cand) / base if base > 0 else 0.0
    print(f"  {args.benchmark} {args.counter}: window=1 {base:.4f} -> adaptive {cand:.4f} "
          f"({improvement * 100.0:+.1f}% improvement)")
    if improvement < args.improvement:
        print(f"FAIL: adaptive fault-around must improve {args.counter} by at least "
              f"{args.improvement * 100.0:.0f}% over window=1")
        return 1
    print("fault-storm gate OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="cmd", required=True)

    compare = sub.add_parser("compare")
    compare.add_argument("baseline")
    compare.add_argument("candidate")
    compare.add_argument("--threshold", type=float, default=0.10)
    compare.set_defaults(fn=cmd_compare)

    storm = sub.add_parser("storm-gate")
    storm.add_argument("storm")
    storm.add_argument("--improvement", type=float, default=0.10)
    storm.add_argument("--benchmark", default="FaultStormRedis")
    storm.add_argument("--counter", default="fault_Mcycles")
    storm.add_argument("--baseline-arg", default="1")
    storm.add_argument("--candidate-arg", default="0")
    storm.set_defaults(fn=cmd_storm_gate)

    args = parser.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
