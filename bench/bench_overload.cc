// Overload survival — open-loop fleet harness (DESIGN.md §4.10, EXPERIMENTS.md "Overload").
//
// Three tenant services share one constrained-memory machine:
//
//   tenant 1  FaaS     Zygote runtime; every request forks an executor running a
//                      heavy-tailed float_operation (FunctionBench).
//   tenant 2  httpd    fork-per-connection: each connection forks a worker that mmaps a
//                      heavy-tailed response buffer up-front, fills it, "sends" it, exits.
//   tenant 3  redis    in-memory store serving inline SETs over a bounded keyspace with a
//                      BGSAVE fork every kOpsPerSnapshot writes.
//
// Arrivals are OPEN-LOOP: each service draws Poisson arrivals (seeded exponential
// inter-arrival times in virtual time) and never slows down when the kernel pushes back —
// the generator models external clients, so a refused fork is a REJECTED request, not a
// retry. Request sizes (executor iterations, response bytes, value sizes) are bounded-Pareto
// heavy tails. A reaper thread inside each service harvests children and classifies exits:
// status 0 = goodput, status >= 128 = CRASHED (an uncontained out-of-memory death — the
// failure mode admission control exists to prevent).
//
// The 1x rate point is calibrated to saturate the machine; 2x is overload. Acceptance
// (gated by check_regression.py overload-gate):
//   - goodput at 2x >= 80% of goodput at 1x (admission sheds load instead of collapsing),
//   - crashed == 0 with admission armed (rejection happens at the fork front door, with
//     enough low-watermark headroom that admitted work always finishes),
//   - the whole run is a pure function of (system, seed): UFORK_OVERLOAD_REPLAY_CHECK=1
//     re-runs every fleet and checks counters and every latency sample bit-for-bit.
//
// Environment knobs (all optional):
//   UFORK_OVERLOAD_SEED=N          master seed (default 1)
//   UFORK_OVERLOAD_CHAOS_SEED=N    also arm every fault-injection site probabilistically at
//                                  go-time (chaos x overload soak; crashed==0 is not
//                                  expected under chaos, containment and determinism are)
//   UFORK_OVERLOAD_REPLAY_CHECK=1  run each fleet twice and require bit-identical results
//                                  (applies only at UFORK_OVERLOAD_SHARDS=1; see below)
//   UFORK_OVERLOAD_SHARDS=N        run the fleet on an N-shard multi-threaded host
//                                  (DESIGN.md §4.11). Rows carry a `shards` counter so
//                                  check_regression.py keys them separately from 1-shard
//                                  baselines.
#include <cmath>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "src/apps/faas.h"
#include "src/apps/miniredis.h"

namespace ufork {
namespace bench {
namespace {

// --- fleet parameters ---------------------------------------------------------------------------

constexpr TenantId kTenantFaas = 1;
constexpr TenantId kTenantHttpd = 2;
constexpr TenantId kTenantRedis = 3;

// Machine: 4 cores, 32 MiB of frames. Small enough that sustained 2x overload exhausts the
// pool in a fraction of the window; large enough that the three services boot with room to
// spare (the watermarks are calibrated against the measured post-boot free count, below).
constexpr uint64_t kFleetPhysMem = 32 * kMiB;
constexpr Cycles kWindow = Milliseconds(200);

// Saturation rates (the "1x" point). Derivation from worker capacity: the mean executor
// runs ~8.7k iterations x 90 cycles ~ 310 us, so ~3 effective cores sustain ~9.7k
// functions/s; httpd and redis add fork/teardown- and copy-bound load on top. The split
// below lands total utilization at the knee — verified empirically: at 1x the admission
// controller barely trips, at 2x it sheds continuously.
constexpr double kSatFaasRate = 6000.0;   // functions/s
constexpr double kSatHttpdRate = 3000.0;  // connections/s
constexpr double kSatRedisRate = 8000.0;  // SET ops/s
constexpr int kOpsPerSnapshot = 64;       // BGSAVE fork cadence (in SET ops)

// Heavy tails (bounded Pareto).
constexpr double kFaasAlpha = 1.3;
constexpr uint64_t kFaasMinIters = 2'000;
constexpr uint64_t kFaasMaxIters = 60'000;
constexpr double kHttpdAlpha = 1.2;
constexpr uint64_t kHttpdMinResp = 4 * kKiB;
constexpr uint64_t kHttpdMaxResp = 64 * kKiB;
constexpr double kRedisAlpha = 1.2;
constexpr uint64_t kRedisMinVal = 64;
constexpr uint64_t kRedisMaxVal = 4 * kKiB;
constexpr uint64_t kRedisKeySpace = 256;

// Watermarks as fractions of the post-boot free-frame count (measured at go-time, the same
// calibration pattern tests/overload_test.cc uses). The gap between low and critical is the
// headroom that lets already-admitted children finish allocating — it is what makes
// crashed==0 achievable under sustained 2x overload.
constexpr double kLowFraction = 0.35;
constexpr double kCriticalFraction = 0.10;
constexpr double kClearFraction = 0.45;
// Belt-and-braces only: the cap must sit well above any tenant's legitimate overload share
// (admission watermarks do the shedding), and only contain a runaway hog. A binding cap
// turns admitted children's grants into ENOMEM deaths — exactly what the gate forbids.
constexpr double kTenantCapFraction = 0.80;

constexpr double kChaosProbability = 0.001;

// Small unikernel-style image; frames are only consumed for touched pages, so the virtual
// layout can be generous while the physical pool stays tight.
LayoutConfig FleetLayout() {
  LayoutConfig layout;
  layout.text_size = 64 * kKiB;
  layout.rodata_size = 16 * kKiB;
  layout.got_size = 16 * kKiB;
  layout.data_size = 16 * kKiB;
  layout.heap_size = 2 * kMiB;
  layout.stack_size = 64 * kKiB;
  layout.tls_size = 4 * kKiB;
  layout.mmap_size = 256 * kKiB;
  return layout;
}

// --- seeded samplers ----------------------------------------------------------------------------

double ExpSample(Rng& rng, double mean) { return -std::log(1.0 - rng.NextDouble()) * mean; }

// Inverse CDF of a Pareto(alpha) truncated to [lo, hi].
uint64_t BoundedPareto(Rng& rng, double alpha, uint64_t lo, uint64_t hi) {
  const double u = rng.NextDouble();
  const double la = std::pow(static_cast<double>(lo), alpha);
  const double ha = std::pow(static_cast<double>(hi), alpha);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  return static_cast<uint64_t>(x);
}

// --- per-service accounting ---------------------------------------------------------------------

// Host-side measurement bookkeeping only — the analogue of the external load generator's
// ledger, not guest program state (the requests themselves live entirely in guest memory).
struct ServiceStats {
  uint64_t offered = 0;    // arrivals generated
  uint64_t completed = 0;  // goodput: children reaped with status 0, or inline ops served
  uint64_t rejected = 0;   // shed: fork/op refused with EAGAIN/ENOMEM (no child ever ran)
  uint64_t crashed = 0;    // children reaped with status >= 128 (uncontained OOM death)
  std::vector<Cycles> latencies;  // per-request: arrival due-time -> completion

  bool operator==(const ServiceStats& o) const {
    return offered == o.offered && completed == o.completed && rejected == o.rejected &&
           crashed == o.crashed && latencies == o.latencies;
  }
};

struct OpenLoopParams {
  Cycles window = kWindow;
  double rate_hz = 0.0;
  uint64_t seed = 0;
  bool chaos = false;  // fault-injection sites armed: service ops may fail spuriously
};

// --- open-loop skeleton -------------------------------------------------------------------------

// Reaper thread: harvests children, stamps latencies, classifies exits. Runs until the
// generator is done AND every in-flight child has been reaped. Wait() with no live children
// returns ECHILD immediately, so idle phases poll on a short virtual-time sleep.
GuestFn MakeReaper(ServiceStats* stats, std::unordered_map<Pid, Cycles>* started,
                   uint64_t* inflight, bool* done) {
  return [stats, started, inflight, done](Guest& tg) -> SimTask<void> {
    Scheduler& sched = tg.kernel().sched();
    while (!*done || *inflight > 0) {
      auto waited = co_await tg.Wait();
      if (!waited.ok()) {
        co_await tg.Nanosleep(Microseconds(100));
        continue;
      }
      --*inflight;
      auto it = started->find(waited->pid);
      if (it != started->end()) {
        stats->latencies.push_back(sched.Now() - it->second);
        started->erase(it);
      }
      if (waited->status == 0) {
        ++stats->completed;
      } else if (waited->status >= 128) {
        ++stats->crashed;
      }
    }
  };
}

// One open-loop fork-per-request service: Poisson arrivals; `launch` forks the request child
// and returns its pid (or the kernel's refusal). The generator never blocks on the kernel —
// a refused fork is shed and the clock keeps running.
SimTask<void> OpenLoopService(Guest& g, OpenLoopParams p, ServiceStats* stats,
                              std::function<SimTask<Result<Pid>>(Guest&, Rng&)> launch) {
  Scheduler& sched = g.kernel().sched();
  Rng arrivals(p.seed);
  Rng payload(p.seed ^ 0x9e3779b97f4a7c15ULL);
  std::unordered_map<Pid, Cycles> started;
  uint64_t inflight = 0;
  bool done = false;

  // Under chaos the thread-create path may be injected; the service itself must survive.
  Result<ThreadId> reaper{Error{Code::kErrAgain, "unstarted"}};
  for (int attempt = 0; attempt < 100 && !reaper.ok(); ++attempt) {
    reaper = co_await g.ThreadCreate(MakeReaper(stats, &started, &inflight, &done));
    if (!reaper.ok()) {
      co_await g.Nanosleep(Microseconds(50));
    }
  }
  UF_CHECK_MSG(reaper.ok(), "overload service could not start its reaper thread");

  const Cycles start = sched.Now();
  const double mean_gap_s = 1.0 / p.rate_hz;
  double due_s = ExpSample(arrivals, mean_gap_s);
  for (;;) {
    const auto due = static_cast<Cycles>(due_s * static_cast<double>(kCyclesPerSecond));
    if (due >= p.window) {
      break;
    }
    const Cycles now = sched.Now() - start;
    if (now < due) {
      co_await g.Nanosleep(due - now);
    }
    ++stats->offered;
    auto child = co_await launch(g, payload);
    if (child.ok()) {
      started[*child] = start + due;  // latency is measured from the arrival's due time
      ++inflight;
    } else {
      ++stats->rejected;
    }
    due_s += ExpSample(arrivals, mean_gap_s);
  }
  done = true;
  while (inflight > 0) {
    co_await g.Nanosleep(Microseconds(200));
  }
  (void)co_await g.ThreadJoin(*reaper);
}

// --- the three services -------------------------------------------------------------------------

SimTask<Result<Pid>> LaunchFaasExecutor(Guest& g, Rng& payload) {
  const uint64_t iters = BoundedPareto(payload, kFaasAlpha, kFaasMinIters, kFaasMaxIters);
  return g.Fork([iters](Guest& cg) -> SimTask<void> {
    // Naive executor: any failure reaching the warm runtime (a CoW/CoPA break that cannot
    // get a frame) is a segfault, exactly like a native function whose malloc'd world
    // vanished mid-flight.
    auto value = FloatOperation(cg, iters);
    if (!value.ok()) {
      co_await cg.RaiseFault(value.error());
      co_return;
    }
    co_await cg.Exit(0);
  });
}

SimTask<Result<Pid>> LaunchHttpdConnection(Guest& g, Rng& payload) {
  const uint64_t resp = BoundedPareto(payload, kHttpdAlpha, kHttpdMinResp, kHttpdMaxResp);
  const uint64_t resp_pages = (resp + kPageSize - 1) / kPageSize;
  return g.Fork([resp, resp_pages](Guest& cg) -> SimTask<void> {
    // Naive CGI worker: the whole response buffer is allocated and touched up-front (so the
    // child's frame demand lands immediately, while the admission headroom that let it in
    // still exists), then serialized and "sent".
    auto buf = co_await cg.MmapAnon(resp_pages * kPageSize);
    if (!buf.ok()) {
      co_await cg.RaiseFault(buf.error());
      co_return;
    }
    for (uint64_t page = 0; page < resp_pages; ++page) {
      auto stored = cg.Store<uint64_t>(*buf, buf->base() + page * kPageSize, page + 1);
      if (!stored.ok()) {
        co_await cg.RaiseFault(stored.error());
        co_return;
      }
    }
    cg.Compute(resp * 4);  // checksum + TLS record framing
    co_await cg.Exit(0);
  });
}

// Redis is not fork-per-request: SETs are served inline by the coordinator (their latency
// still measures queueing delay — under pressure the coordinator falls behind its arrival
// clock), and every kOpsPerSnapshot-th write triggers a BGSAVE fork harvested by the reaper.
SimTask<void> RedisService(Guest& g, OpenLoopParams p, ServiceStats* stats) {
  Scheduler& sched = g.kernel().sched();
  auto db = MiniRedis::Create(g, /*buckets=*/64);
  UF_CHECK_MSG(db.ok(), "mini-redis create failed at fleet boot");
  Rng preload_rng(p.seed ^ 0xc0ffee);
  for (uint64_t i = 0; i < kRedisKeySpace; ++i) {
    const uint64_t len = BoundedPareto(preload_rng, kRedisAlpha, kRedisMinVal, kRedisMaxVal);
    std::vector<std::byte> value(len, std::byte{static_cast<uint8_t>(i)});
    UF_CHECK_MSG(db->Set("key-" + std::to_string(i), value).ok(), "redis preload failed");
  }

  Rng arrivals(p.seed);
  Rng payload(p.seed ^ 0x9e3779b97f4a7c15ULL);
  std::unordered_map<Pid, Cycles> started;
  uint64_t inflight = 0;
  bool done = false;
  Result<ThreadId> reaper{Error{Code::kErrAgain, "unstarted"}};
  for (int attempt = 0; attempt < 100 && !reaper.ok(); ++attempt) {
    reaper = co_await g.ThreadCreate(MakeReaper(stats, &started, &inflight, &done));
    if (!reaper.ok()) {
      co_await g.Nanosleep(Microseconds(50));
    }
  }
  UF_CHECK_MSG(reaper.ok(), "redis service could not start its reaper thread");

  const Cycles start = sched.Now();
  const double mean_gap_s = 1.0 / p.rate_hz;
  double due_s = ExpSample(arrivals, mean_gap_s);
  uint64_t ops = 0;
  for (;;) {
    const auto due = static_cast<Cycles>(due_s * static_cast<double>(kCyclesPerSecond));
    if (due >= p.window) {
      break;
    }
    const Cycles now = sched.Now() - start;
    if (now < due) {
      co_await g.Nanosleep(due - now);
    }
    ++stats->offered;
    const uint64_t key = payload.NextU64() % kRedisKeySpace;
    const uint64_t len = BoundedPareto(payload, kRedisAlpha, kRedisMinVal, kRedisMaxVal);
    std::vector<std::byte> value(len, std::byte{static_cast<uint8_t>(key)});
    auto set = db->Set("key-" + std::to_string(key), value);
    if (!set.ok()) {
      ++stats->rejected;  // shed (an injected or out-of-memory store; the service survives)
    } else {
      ++stats->completed;
      stats->latencies.push_back(sched.Now() - (start + due));
      if (++ops % kOpsPerSnapshot == 0) {
        ++stats->offered;
        auto snapshot = co_await db->BgSave("/fleet/redis.rdb");
        if (snapshot.ok()) {
          started[*snapshot] = sched.Now();
          ++inflight;
        } else {
          ++stats->rejected;  // admission EAGAIN or a failed grant mid-fork
        }
      }
    }
    due_s += ExpSample(arrivals, mean_gap_s);
  }
  done = true;
  while (inflight > 0) {
    co_await g.Nanosleep(Microseconds(200));
  }
  (void)co_await g.ThreadJoin(*reaper);
  // Snapshot integrity survived the storm. The BGSAVE child publishes via rename, which is
  // atomic: a readable dump must always parse and checksum, storm or no storm. Under chaos
  // the dump may be absent or unreadable (every BGSAVE or the verify read itself can be the
  // injected victim) — but a TORN published dump is a protocol violation in any mode.
  if (ops >= kOpsPerSnapshot) {
    auto dump = co_await db->VerifyDump("/fleet/redis.rdb");
    if (dump.ok()) {
      UF_CHECK_MSG(dump->entries > 0, "redis dump empty after overload run");
    } else {
      UF_CHECK_MSG(p.chaos, "redis dump corrupt after overload run");
    }
  }
}

// --- fleet orchestration ------------------------------------------------------------------------

struct FleetResult {
  ServiceStats faas;
  ServiceStats httpd;
  ServiceStats redis;
  Cycles elapsed = 0;  // go-time -> last service exit
  uint64_t admission_trips = 0;
  uint64_t admission_rejected = 0;
  uint64_t tenant_cap_rejections = 0;
  uint64_t forks = 0;
  uint64_t peak_resident_frames = 0;  // allocator high-water mark over the whole run

  bool operator==(const FleetResult& o) const {
    return faas == o.faas && httpd == o.httpd && redis == o.redis && elapsed == o.elapsed &&
           admission_trips == o.admission_trips && admission_rejected == o.admission_rejected &&
           tenant_cap_rejections == o.tenant_cap_rejections && forks == o.forks &&
           peak_resident_frames == o.peak_resident_frames;
  }
};

struct FleetOptions {
  double rate_multiplier = 1.0;
  uint64_t seed = 1;
  bool admission = true;
  bool chaos = false;
  uint64_t chaos_seed = 0;
  int host_shards = 1;  // UFORK_OVERLOAD_SHARDS: sharded-host smoke row (DESIGN.md §4.11)
};

FleetResult RunFleet(System system, const FleetOptions& opt) {
  SystemConfig sc;
  sc.system = system;
  sc.layout = FleetLayout();
  sc.cores = 4;
  sc.phys_mem_bytes = kFleetPhysMem;
  sc.host_shards = opt.host_shards;

  FleetResult result;
  auto kernel = RunGuestMain(sc, [&result, opt](Guest& g) -> SimTask<void> {
    Kernel& k = g.kernel();
    Scheduler& sched = k.sched();

    // Startup barrier: each service initializes its warm state, reports ready, and blocks on
    // its private go pipe; the watermarks are calibrated against the post-init pool.
    auto ready_pipe = co_await g.Pipe();
    UF_CHECK(ready_pipe.ok());
    struct Svc {
      TenantId tenant;
      double rate;
      ServiceStats* stats;
      int go_r = -1, go_w = -1;
    } services[3] = {
        {kTenantFaas, kSatFaasRate * opt.rate_multiplier, &result.faas},
        {kTenantHttpd, kSatHttpdRate * opt.rate_multiplier, &result.httpd},
        {kTenantRedis, kSatRedisRate * opt.rate_multiplier, &result.redis},
    };
    for (Svc& svc : services) {
      auto go_pipe = co_await g.Pipe();
      UF_CHECK(go_pipe.ok());
      svc.go_r = go_pipe->first;
      svc.go_w = go_pipe->second;
    }

    for (const Svc& svc : services) {
      OpenLoopParams params;
      params.rate_hz = svc.rate;
      params.seed = opt.seed * 1000003 + svc.tenant;
      params.chaos = opt.chaos;
      const int ready_w = ready_pipe->second;
      GuestFn service_fn = [svc, params, ready_w](Guest& sg) -> SimTask<void> {
        sg.SetTenant(svc.tenant);  // every frame this tree touches bills to the tenant
        if (svc.tenant == kTenantFaas) {
          UF_CHECK_MSG(InitializeZygoteRuntime(sg).ok(), "zygote init failed at fleet boot");
        }
        auto buf = sg.Malloc(16);
        UF_CHECK(buf.ok());
        UF_CHECK(sg.StoreAt<uint64_t>(*buf, 0, 1).ok());
        if (svc.tenant == kTenantRedis) {
          // Redis preloads before reporting ready so its DB counts into the calibration.
          UF_CHECK((co_await sg.Write(ready_w, *buf, 1)).ok());
          UF_CHECK((co_await sg.Read(svc.go_r, *buf, 1)).ok());
          co_await RedisService(sg, params, svc.stats);
        } else {
          UF_CHECK((co_await sg.Write(ready_w, *buf, 1)).ok());
          UF_CHECK((co_await sg.Read(svc.go_r, *buf, 1)).ok());
          co_await OpenLoopService(sg, params, svc.stats,
                                   svc.tenant == kTenantFaas ? LaunchFaasExecutor
                                                             : LaunchHttpdConnection);
        }
        co_await sg.Exit(0);
      };
      UF_CHECK_MSG((co_await g.Fork(std::move(service_fn))).ok(), "fleet service fork failed");
    }

    // Wait — redis preload happens before its ready byte, so all three readies mean the
    // pool is at its loaded steady state.
    auto buf = g.Malloc(16);
    UF_CHECK(buf.ok());
    UF_CHECK(g.StoreAt<uint64_t>(*buf, 0, 1).ok());
    for (int i = 0; i < 3; ++i) {
      UF_CHECK((co_await g.Read(ready_pipe->first, *buf, 1)).ok());
    }

    FrameAllocator& frames = k.machine().frames();
    const uint64_t free0 = frames.free_frames();
    if (opt.admission) {
      OverloadConfig oc;
      oc.enabled = true;
      oc.low_watermark = static_cast<uint64_t>(static_cast<double>(free0) * kLowFraction);
      oc.critical_watermark =
          static_cast<uint64_t>(static_cast<double>(free0) * kCriticalFraction);
      oc.clear_watermark = static_cast<uint64_t>(static_cast<double>(free0) * kClearFraction);
      oc.max_parked = 0;  // open-loop fleet: shed with EAGAIN, never stall the generator
      k.admission().Configure(oc);
      const auto cap =
          static_cast<uint64_t>(static_cast<double>(free0) * kTenantCapFraction);
      frames.SetTenantCap(kTenantFaas, cap);
      frames.SetTenantCap(kTenantHttpd, cap);
      frames.SetTenantCap(kTenantRedis, cap);
    }
    if (opt.chaos) {
      // Chaos x overload: every site armed from go-time on (boot stays clean so the fleet
      // always forms; containment and replay are the properties under test here).
      k.fault_injector().ArmAll(FaultPolicy::Probabilistic(kChaosProbability),
                                opt.chaos_seed);
    }

    const Cycles go = sched.Now();
    for (const Svc& svc : services) {
      UF_CHECK((co_await g.Write(svc.go_w, *buf, 1)).ok());
    }
    for (int i = 0; i < 3; ++i) {
      auto waited = co_await g.Wait();
      UF_CHECK_MSG(waited.ok() && waited->status == 0,
                   "a fleet service died — overload must never kill a coordinator");
    }
    result.elapsed = sched.Now() - go;
    result.admission_trips = k.stats().admission_trips;
    result.admission_rejected = k.stats().admission_rejected;
    result.tenant_cap_rejections = frames.tenant_cap_rejections();
    result.forks = k.stats().forks;
    result.peak_resident_frames = frames.peak_frames();
  });
  UF_CHECK_MSG(kernel->LivePids().empty(), "fleet left zombie uprocs behind");
  UF_CHECK_MSG(kernel->CheckFrameAccounting().ok(), "fleet leaked frames");
  return result;
}

// --- reporting ----------------------------------------------------------------------------------

double PercentileUs(const std::vector<Cycles>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const auto rank = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return ToMicroseconds(sorted[std::min(rank, sorted.size() - 1)]);
}

uint64_t EnvSeed(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

void OverloadFleet(::benchmark::State& state, System system, bool admission) {
  FleetOptions opt;
  opt.rate_multiplier = static_cast<double>(state.range(0)) / 10.0;
  opt.seed = EnvSeed("UFORK_OVERLOAD_SEED", 1);
  opt.admission = admission;
  opt.host_shards = static_cast<int>(EnvSeed("UFORK_OVERLOAD_SHARDS", 1));
  const char* chaos_env = std::getenv("UFORK_OVERLOAD_CHAOS_SEED");
  if (chaos_env != nullptr) {
    opt.chaos = true;
    opt.chaos_seed = std::strtoull(chaos_env, nullptr, 10);
  }

  for (auto _ : state) {
    FleetResult r = RunFleet(system, opt);
    // Replay bit-identity is a single-shard property: at shards>1 virtual cycle totals
    // (and hence latency tails) legitimately vary with host thread interleaving even
    // though guest-visible payloads do not. See DESIGN.md §4.11.
    if (opt.host_shards == 1 && std::getenv("UFORK_OVERLOAD_REPLAY_CHECK") != nullptr) {
      FleetResult replay = RunFleet(system, opt);
      UF_CHECK_MSG(replay == r,
                   "overload fleet is not a pure function of (system, seed): replay diverged");
    }
    SetIterationCycles(state, r.elapsed);

    std::vector<Cycles> latencies;
    const ServiceStats* all[] = {&r.faas, &r.httpd, &r.redis};
    uint64_t offered = 0, completed = 0, rejected = 0, crashed = 0;
    for (const ServiceStats* s : all) {
      offered += s->offered;
      completed += s->completed;
      rejected += s->rejected;
      crashed += s->crashed;
      latencies.insert(latencies.end(), s->latencies.begin(), s->latencies.end());
    }
    std::sort(latencies.begin(), latencies.end());

    const double window_s = ToSeconds(kWindow);
    state.counters["goodput_rps"] = static_cast<double>(completed) / window_s;
    state.counters["offered_rps"] = static_cast<double>(offered) / window_s;
    state.counters["p50_us"] = PercentileUs(latencies, 0.50);
    state.counters["p99_us"] = PercentileUs(latencies, 0.99);
    state.counters["p999_us"] = PercentileUs(latencies, 0.999);
    state.counters["rejected"] = static_cast<double>(rejected);
    state.counters["crashed"] = static_cast<double>(crashed);
    state.counters["admission_trips"] = static_cast<double>(r.admission_trips);
    state.counters["admission_rejected"] = static_cast<double>(r.admission_rejected);
    state.counters["tenant_cap_rejections"] = static_cast<double>(r.tenant_cap_rejections);
    state.counters["forks"] = static_cast<double>(r.forks);
    state.counters["shards"] = static_cast<double>(opt.host_shards);
    state.counters["resident_frames"] = static_cast<double>(r.peak_resident_frames);
  }
}

// Arg is the rate multiplier x10: 10 = saturation, 20 = 2x overload.
#define UF_OVERLOAD(name, ...)                            \
  BENCHMARK_CAPTURE(OverloadFleet, name, __VA_ARGS__)     \
      ->Arg(10)                                           \
      ->Arg(20)                                           \
      ->Iterations(1)                                     \
      ->UseManualTime()                                   \
      ->Unit(::benchmark::kMillisecond)

UF_OVERLOAD(uFork, System::kUfork, /*admission=*/true);
UF_OVERLOAD(CheriBSD, System::kCheriBsd, /*admission=*/true);
UF_OVERLOAD(Nephele, System::kNephele, /*admission=*/true);
// The ablation the subsystem exists for: same storm, no admission control — children die of
// uncontained ENOMEM instead of requests being shed at the front door.
UF_OVERLOAD(uFork_NoAdmission, System::kUfork, /*admission=*/false);

}  // namespace
}  // namespace bench
}  // namespace ufork

BENCHMARK_MAIN();
