// Figure 8 — fork latency and per-process memory for a minimal ("hello world") program.
//
// Forks a trivial μprocess and measures (a) the latency of the fork call and (b) the memory
// the new process consumes (unique set size + backend per-process overhead), sampled while the
// child is parked alive. Paper results to reproduce:
//   latency: μFork 54 μs | CheriBSD 197 μs (3.7×) | Nephele 10.7 ms (198×)
//   memory:  μFork 0.13 MB | CheriBSD 0.29 MB (2.2×) | Nephele 1.6 MB (12.3×)
#include "bench/bench_common.h"

namespace ufork {
namespace bench {
namespace {

struct HelloResult {
  Cycles fork_latency = 0;
  double child_uss_mb = 0.0;
};

HelloResult RunHelloFork(const SystemConfig& sc) {
  HelloResult result;
  RunGuestMain(sc, [&result](Guest& g) -> SimTask<void> {
    auto park = co_await g.Pipe();
    UF_CHECK(park.ok());
    const auto [park_r, park_w] = *park;
    GuestFn child_fn = [park_r = park_r, park_w = park_w](Guest& cg) -> SimTask<void> {
      (void)co_await cg.Close(park_w);
      // "hello world": format a greeting in guest memory, then park for measurement.
      auto line = cg.PlaceString("hello, world\n");
      UF_CHECK(line.ok());
      auto byte = cg.Malloc(16);
      UF_CHECK(byte.ok());
      (void)co_await cg.Read(park_r, *byte, 1);  // EOF when the parent closes
      co_await cg.Exit(0);
    };
    auto child = co_await g.Fork(std::move(child_fn));
    UF_CHECK(child.ok());
    Uproc* child_proc = g.kernel().FindUproc(*child);
    UF_CHECK(child_proc != nullptr);
    result.fork_latency = child_proc->fork_stats.latency;
    // Give the child a slice to run its (tiny) body before sampling.
    (void)co_await g.Nanosleep(Microseconds(200));
    result.child_uss_mb = g.kernel().UprocUssMb(*child_proc);
    UF_CHECK((co_await g.Close(park_w)).ok());
    (void)co_await g.Wait();
  });
  return result;
}

void HelloFork(::benchmark::State& state, System system) {
  SystemConfig sc;
  sc.system = system;
  sc.layout = HelloLayout();
  for (auto _ : state) {
    const HelloResult result = RunHelloFork(sc);
    SetIterationCycles(state, result.fork_latency);
    state.counters["fork_us"] = ToMicroseconds(result.fork_latency);
    state.counters["mem_MB"] = result.child_uss_mb;
  }
}

BENCHMARK_CAPTURE(HelloFork, uFork, System::kUfork)
    ->Iterations(5)
    ->UseManualTime()
    ->Unit(::benchmark::kMicrosecond);
BENCHMARK_CAPTURE(HelloFork, CheriBSD, System::kCheriBsd)
    ->Iterations(5)
    ->UseManualTime()
    ->Unit(::benchmark::kMicrosecond);
BENCHMARK_CAPTURE(HelloFork, Nephele, System::kNephele)
    ->Iterations(5)
    ->UseManualTime()
    ->Unit(::benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace ufork

BENCHMARK_MAIN();
