// Host (wall-clock) throughput of the simulator itself — the benchmark gate for host-side
// optimization PRs.
//
// Every other bench in this directory reports *virtual* time from the calibrated cost model;
// this one reports how many nanoseconds of host CPU the simulator spends producing each unit of
// simulated work. It pins the hot paths the ROADMAP's "runs as fast as the hardware allows"
// goal depends on:
//   * TaggedPageCopyRelocate — the §4.2 inner loop: allocate a frame, copy a 4 KiB tagged
//     page, rank-select scan + rebase every tagged capability, release the frame. This is the
//     per-page cost of every CoW/CoA/CoPA resolution and every eager fork copy.
//   * SimulatedFork — end-to-end hello-world fork+exit+wait round trips per host second,
//     across the three systems.
//   * CopaFaultResolution — a forked child chasing tagged pointers through shared pages; host
//     cost per resolved capability-load fault.
//   * SyscallGetPid — host cost per trivial simulated syscall (sealed entry / trap /
//     hypercall all exercise the same host-side syscall scaffolding).
//   * RedisSaveEndToEnd — host runtime of one Fig. 3 Redis BGSAVE run (10 MB database), the
//     macro workload whose heap (≈35k frames) pays for the frame hot path on every run.
//
// `bench/run_benches.sh` writes the JSON results to BENCH_host_throughput.json; EXPERIMENTS.md
// records the trajectory. Virtual-time results are pinned separately by
// tests/golden_cycles_test.cc — host optimizations must move THIS file's numbers and nothing
// there.
#include "bench/redis_bench_util.h"
#include "src/ufork/relocate.h"

namespace ufork {
namespace bench {
namespace {

// --- TaggedPageCopyRelocate ---------------------------------------------------------------------

// One simulated page copy as performed by UforkBackend::CopyAndRelocate: recycle a frame from
// the allocator, copy data + tags, relocate every tagged capability into the child region.
void TaggedPageCopyRelocate(::benchmark::State& state) {
  const uint64_t tagged_granules = static_cast<uint64_t>(state.range(0));
  AddressSpace as(4 * kGiB, 8 * kGiB);
  const uint64_t region_size = 4 * kMiB;
  const uint64_t parent = as.AllocateRegion(region_size, 2 * kMiB).value();
  const uint64_t child = as.AllocateRegion(region_size, 2 * kMiB).value();

  Frame src;
  for (uint64_t i = 0; i < kPageSize / sizeof(uint64_t); ++i) {
    const uint64_t v = 0x9e3779b97f4a7c15ULL * (i + 1);
    src.Write(i * sizeof(uint64_t), std::as_bytes(std::span(&v, 1)));
  }
  // Spread the tagged capabilities evenly over the page, all pointing into the parent region
  // (the common case: every one must be rebased).
  const uint64_t stride = kGranulesPerPage / std::max<uint64_t>(1, tagged_granules);
  for (uint64_t t = 0; t < tagged_granules; ++t) {
    const uint64_t granule = t * stride;
    src.StoreCap(granule * kCapSize,
                 Capability::Root(parent + 0x1000 + t * 64, 64, kPermAllData));
  }

  FrameAllocator alloc(/*max_frames=*/4);
  uint64_t relocated = 0;
  for (auto _ : state) {
    const FrameId id = alloc.AllocateForCopy().value();
    Frame& dst = alloc.frame(id);
    dst.CopyFrom(src);
    const RelocationResult reloc = RelocateFrameInto(dst, as, child, region_size);
    relocated += reloc.relocated;
    ::benchmark::DoNotOptimize(relocated);
    alloc.Release(id);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["caps_per_page"] = static_cast<double>(tagged_granules);
}

BENCHMARK(TaggedPageCopyRelocate)->Arg(0)->Arg(8)->Arg(64)->Arg(256);

// --- SimulatedFork ------------------------------------------------------------------------------

constexpr int kForksPerRun = 20;

// One complete hello-world run: fork kForksPerRun children sequentially, each exits, parent
// waits. Host time per simulated fork is the figure of merit.
void SimulatedFork(::benchmark::State& state, System system) {
  SystemConfig sc;
  sc.system = system;
  sc.layout = HelloLayout();
  for (auto _ : state) {
    RunGuestMain(sc, [](Guest& g) -> SimTask<void> {
      for (int i = 0; i < kForksPerRun; ++i) {
        GuestFn child_fn = [](Guest& cg) -> SimTask<void> {
          auto block = cg.Malloc(64);
          UF_CHECK(block.ok());
          co_await cg.Exit(0);
        };
        auto child = co_await g.Fork(std::move(child_fn));
        UF_CHECK(child.ok());
        auto waited = co_await g.Wait();
        UF_CHECK(waited.ok());
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kForksPerRun);
}

BENCHMARK_CAPTURE(SimulatedFork, uFork, System::kUfork);
BENCHMARK_CAPTURE(SimulatedFork, CheriBSD, System::kCheriBsd);
BENCHMARK_CAPTURE(SimulatedFork, Nephele, System::kNephele);

// --- ForkFleetThroughput ------------------------------------------------------------------------

constexpr int kFleetRoots = 8;
constexpr int kFleetForksPerRoot = 8;

// The sharded-host scaling gate (DESIGN.md §4.11): an 8-root fork fleet, each root forking
// and reaping children that dirty anonymous memory (CoW work on the shared machine). Arg is
// the host shard count; `forks_per_hsec` is the wall-clock scaling figure check_regression.py
// gates on (≥2.5× at 4 shards vs 1 on a ≥4-core host — on fewer cores the gate skips).
// UseRealTime: shard workers burn CPU time in parallel; wall clock is the merit figure.
void ForkFleetThroughput(::benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  SystemConfig sc;
  sc.layout = HelloLayout();
  sc.cores = 4;
  sc.host_shards = shards;
  for (auto _ : state) {
    auto kernel = MakeSystem(sc);
    for (int root = 0; root < kFleetRoots; ++root) {
      auto pid = kernel->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                                 for (int i = 0; i < kFleetForksPerRoot; ++i) {
                                   auto child =
                                       co_await g.Fork([](Guest& cg) -> SimTask<void> {
                                         auto mapped = co_await cg.MmapAnon(4 * kPageSize);
                                         UF_CHECK(mapped.ok());
                                         for (uint64_t off = 0; off < 4 * kPageSize;
                                              off += kPageSize) {
                                           UF_CHECK(cg.Store<uint64_t>(
                                                        *mapped, mapped->base() + off, off)
                                                        .ok());
                                         }
                                         co_await cg.Exit(0);
                                       });
                                   UF_CHECK(child.ok());
                                   auto waited = co_await g.Wait();
                                   UF_CHECK(waited.ok());
                                 }
                               }),
                               "fleet" + std::to_string(root));
      UF_CHECK(pid.ok());
    }
    kernel->Run();
  }
  const auto total_forks =
      static_cast<int64_t>(state.iterations()) * kFleetRoots * kFleetForksPerRoot;
  state.SetItemsProcessed(total_forks);
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["forks_per_hsec"] =
      ::benchmark::Counter(static_cast<double>(total_forks), ::benchmark::Counter::kIsRate);
}

BENCHMARK(ForkFleetThroughput)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// --- HttpdFleetFootprint ------------------------------------------------------------------------

constexpr int kHttpdWorkers = 256;

// Memory footprint of a 256-worker httpd-style fleet (DESIGN.md §4.12): every worker is
// posix_spawned from the same image and mmaps the same config file through the unified page
// cache. Arg 0 = eager population, Arg 1 = demand paging. The figure of merit is the
// `resident_frames` counter sampled while the whole fleet is live — check_regression.py's
// footprint-gate pins demand ≤ 0.5× eager. `reserved_mb` records the VA the demand fleet
// holds as frame-less reservations instead.
void HttpdFleetFootprint(::benchmark::State& state) {
  const bool demand = state.range(0) != 0;
  SystemConfig sc;
  sc.system = System::kUfork;
  sc.layout = HttpdLayout();
  sc.demand_paging = demand;
  uint64_t resident = 0;
  uint64_t reserved_bytes = 0;
  for (auto _ : state) {
    auto kernel = MakeSystem(sc);
    kernel->RegisterProgram(
        "httpd-worker", MakeGuestEntry([](Guest& g) -> SimTask<void> {
          // A worker's steady state: read the shared config through the page cache, touch a
          // little private heap, then serve (sleep) until the sampler has seen the fleet.
          auto conf = co_await g.MmapFile("/etc/httpd.conf", 2 * kPageSize);
          UF_CHECK(conf.ok());
          auto word = g.Load<uint64_t>(*conf, conf->base());
          UF_CHECK(word.ok());
          auto scratch = g.Malloc(8 * kKiB);
          UF_CHECK(scratch.ok());
          UF_CHECK(g.Store<uint64_t>(*scratch, scratch->base(), *word).ok());
          UF_CHECK((co_await g.Nanosleep(Cycles{1'000'000'000})).ok());
        }));
    auto pid = kernel->Spawn(
        MakeGuestEntry([&resident, &reserved_bytes](Guest& g) -> SimTask<void> {
          auto buf = g.Malloc(kPageSize);
          UF_CHECK(buf.ok());
          auto fd = co_await g.Open("/etc/httpd.conf", kOpenWrite | kOpenCreate);
          UF_CHECK(fd.ok());
          UF_CHECK((co_await g.Write(*fd, *buf, kPageSize)).ok());
          UF_CHECK((co_await g.Close(*fd)).ok());
          for (int i = 0; i < kHttpdWorkers; ++i) {
            auto worker = co_await g.SpawnProgram("httpd-worker");
            UF_CHECK(worker.ok());
          }
          // Every worker's image exists (spawn maps it) and none has woken: sample the
          // fleet's footprint at its plateau.
          resident = g.kernel().ResidentFrames();
          reserved_bytes = g.kernel().ReservedBytes();
          for (int i = 0; i < kHttpdWorkers; ++i) {
            auto waited = co_await g.Wait();
            UF_CHECK(waited.ok());
          }
        }),
        "httpd-init");
    UF_CHECK(pid.ok());
    kernel->Run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kHttpdWorkers);
  state.counters["demand"] = demand ? 1.0 : 0.0;
  state.counters["resident_frames"] = static_cast<double>(resident);
  state.counters["reserved_mb"] =
      static_cast<double>(reserved_bytes) / static_cast<double>(kMiB);
}

BENCHMARK(HttpdFleetFootprint)->Arg(0)->Arg(1)->Unit(::benchmark::kMillisecond);

// --- CopaFaultResolution ------------------------------------------------------------------------

constexpr uint64_t kCopaBlocks = 256;    // tagged chain spread over ~128 heap pages
constexpr uint64_t kCopaBlockBytes = 2048;

// Parent builds a long capability chain, the forked child chases it: every page's first tagged
// load raises a CoPA fault (copy + relocate). Items = resolved cap-load faults.
void CopaFaultResolution(::benchmark::State& state) {
  SystemConfig sc;
  sc.system = System::kUfork;
  sc.layout = HelloLayout();
  sc.layout.heap_size = 4 * kMiB;
  uint64_t faults = 0;
  for (auto _ : state) {
    auto kernel = RunGuestMain(sc, [](Guest& g) -> SimTask<void> {
      Capability prev;
      for (uint64_t i = 0; i < kCopaBlocks; ++i) {
        auto block = g.Malloc(kCopaBlockBytes);
        UF_CHECK(block.ok());
        if (i == 0) {
          UF_CHECK(g.GotStore(kGotSlotFirstUser, *block).ok());
        } else {
          UF_CHECK(g.StoreCap(prev, prev.base(), *block).ok());
        }
        prev = *block;
      }
      UF_CHECK(g.StoreCap(prev, prev.base(), Capability::Integer(0)).ok());
      GuestFn child_fn = [](Guest& cg) -> SimTask<void> {
        auto head = cg.GotLoad(kGotSlotFirstUser);
        UF_CHECK(head.ok());
        Capability cursor = *head;
        uint64_t visited = 0;
        while (cursor.tag()) {
          auto next = cg.LoadCap(cursor, cursor.base());
          UF_CHECK(next.ok());
          cursor = *next;
          ++visited;
        }
        co_await cg.Exit(visited == kCopaBlocks ? 0 : 1);
      };
      auto child = co_await g.Fork(std::move(child_fn));
      UF_CHECK(child.ok());
      auto waited = co_await g.Wait();
      UF_CHECK(waited.ok() && waited->status == 0);
    });
    faults += kernel->machine().cap_load_faults();
  }
  state.SetItemsProcessed(static_cast<int64_t>(faults));
}

BENCHMARK(CopaFaultResolution);

// --- SyscallGetPid ------------------------------------------------------------------------------

constexpr int kSyscallsPerRun = 2000;

void SyscallGetPid(::benchmark::State& state, System system) {
  SystemConfig sc;
  sc.system = system;
  sc.layout = HelloLayout();
  for (auto _ : state) {
    RunGuestMain(sc, [](Guest& g) -> SimTask<void> {
      for (int i = 0; i < kSyscallsPerRun; ++i) {
        auto pid = co_await g.GetPid();
        UF_CHECK(pid.ok());
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kSyscallsPerRun);
}

BENCHMARK_CAPTURE(SyscallGetPid, uFork, System::kUfork);
BENCHMARK_CAPTURE(SyscallGetPid, CheriBSD, System::kCheriBsd);
BENCHMARK_CAPTURE(SyscallGetPid, Nephele, System::kNephele);

// --- RedisSaveEndToEnd --------------------------------------------------------------------------

// Full Fig. 3 run at 10 MB: populate, fork, serialize, verify. Host runtime of the macro
// workload — the end-to-end number the per-page optimizations must move.
void RedisSaveEndToEnd(::benchmark::State& state) {
  SystemConfig sc;
  sc.system = System::kUfork;
  sc.layout = RedisLayout();
  for (auto _ : state) {
    const RedisRunResult result = RunRedisBgSave(sc, 10 * kMiB);
    ::benchmark::DoNotOptimize(result.save_elapsed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK(RedisSaveEndToEnd)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ufork

BENCHMARK_MAIN();
