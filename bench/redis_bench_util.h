// Shared Redis-snapshot benchmark driver for Figures 3, 4 and 5: populates a database of the
// requested size (100 KB entries, as in §5.1), triggers a background save, and captures fork
// latency, overall save time, and the forked child's residency (measured while the child is
// still alive, right after it finishes serializing — a handshake over a pipe keeps it parked).
#ifndef UFORK_BENCH_REDIS_BENCH_UTIL_H_
#define UFORK_BENCH_REDIS_BENCH_UTIL_H_

#include "bench/bench_common.h"
#include "src/apps/miniredis.h"

namespace ufork {
namespace bench {

struct RedisRunResult {
  Cycles fork_latency = 0;
  Cycles save_elapsed = 0;   // BGSAVE trigger -> dump complete
  double child_uss_mb = 0.0;
  uint64_t dump_entries = 0;
};

inline constexpr uint64_t kRedisEntryBytes = 100 * 1024;  // 100 KB entries (§5.1)

inline RedisRunResult RunRedisBgSave(const SystemConfig& sc, uint64_t db_bytes) {
  RedisRunResult result;
  const uint64_t entries = std::max<uint64_t>(1, db_bytes / kRedisEntryBytes);
  auto kernel = RunGuestMain(sc, [&result, entries](Guest& g) -> SimTask<void> {
    auto db = MiniRedis::Create(g, /*buckets=*/4096);
    UF_CHECK(db.ok());
    const std::vector<std::byte> blob(kRedisEntryBytes, std::byte{0x5c});
    for (uint64_t i = 0; i < entries; ++i) {
      UF_CHECK(db->Set("key:" + std::to_string(i), blob).ok());
    }

    auto done_pipe = co_await g.Pipe();
    auto park_pipe = co_await g.Pipe();
    UF_CHECK(done_pipe.ok() && park_pipe.ok());
    const auto [done_r, done_w] = *done_pipe;
    const auto [park_r, park_w] = *park_pipe;

    const Cycles save_start = g.kernel().sched().Now();
    GuestFn child_fn = [done_r = done_r, done_w = done_w, park_r = park_r,
                        park_w = park_w](Guest& cg) -> SimTask<void> {
      // fork+pipe hygiene: drop the ends this side does not use so EOF propagates.
      (void)co_await cg.Close(done_r);
      (void)co_await cg.Close(park_w);
      auto child_db = MiniRedis::Attach(cg);
      UF_CHECK(child_db.ok());
      auto written = co_await child_db->Save("/dump.rdb.tmp");
      UF_CHECK(written.ok());
      UF_CHECK((co_await cg.Rename("/dump.rdb.tmp", "/dump.rdb")).ok());
      // Signal completion, then park until the parent finishes measuring.
      auto byte = cg.Malloc(16);
      UF_CHECK(byte.ok());
      UF_CHECK((co_await cg.Write(done_w, *byte, 1)).ok());
      (void)co_await cg.Read(park_r, *byte, 1);  // EOF when the parent closes park_w
      co_await cg.Exit(0);
    };
    auto child = co_await g.Fork(std::move(child_fn));
    UF_CHECK(child.ok());
    Uproc* child_proc = g.kernel().FindUproc(*child);
    UF_CHECK(child_proc != nullptr);
    result.fork_latency = child_proc->fork_stats.latency;

    auto byte = g.Malloc(16);
    UF_CHECK(byte.ok());
    auto done = co_await g.Read(done_r, *byte, 1);
    UF_CHECK(done.ok() && *done == 1);
    result.save_elapsed = g.kernel().sched().Now() - save_start;
    result.child_uss_mb = g.kernel().UprocUssMb(*child_proc);
    UF_CHECK((co_await g.Close(park_w)).ok());
    auto waited = co_await g.Wait();
    UF_CHECK(waited.ok() && waited->status == 0);

    auto info = co_await db->VerifyDump("/dump.rdb");
    UF_CHECK_MSG(info.ok(), "snapshot failed verification");
    result.dump_entries = info->entries;
    co_return;
  });
  UF_CHECK(result.dump_entries == entries);
  return result;
}

}  // namespace bench
}  // namespace ufork

#endif  // UFORK_BENCH_REDIS_BENCH_UTIL_H_
