// Figure 7 — Nginx throughput (requests/second) with 1-3 pre-forked workers.
//
// A master forks long-lived workers that serve a closed loop of wrk-style connections. Paper
// results to reproduce (shape):
//   * μFork is restricted to a single core (Unikraft's big-kernel-lock SMP, §4.5); still,
//     going from 1 to 3 workers gains ~15.6% because workers yield during I/O;
//   * CheriBSD restricted to one core is ~9% *slower* than single-core μFork (trap syscalls,
//     TLB-flushing context switches);
//   * CheriBSD allowed to scale across cores wins overall — SMP, not fork, is μFork's current
//     limit there;
//   * TOCTTOU protection costs ~6.5% of μFork's throughput (requests pass buffers on every
//     syscall).
#include "bench/bench_common.h"
#include "src/apps/httpd.h"

namespace ufork {
namespace bench {
namespace {

void NginxThroughput(::benchmark::State& state, System system, int cores,
                     IsolationLevel isolation) {
  const int workers = static_cast<int>(state.range(0));
  SystemConfig sc;
  sc.system = system;
  sc.layout = HttpdLayout();
  sc.cores = cores;
  sc.isolation = isolation;
  for (auto _ : state) {
    HttpdResult result;
    HttpdParams params;
    params.workers = workers;
    params.connections = 8;
    params.requests_per_connection = 400;
    if (system == System::kUfork) {
      // bhyve + VirtIO + Unikraft's immature network stack (§5.1).
      params.net_stack_cost = 25'000;
    }
    RunGuestMain(sc, [&result, params](Guest& g) -> SimTask<void> {
      co_await HttpdBenchmark(g, params, &result);
    });
    SetIterationCycles(state, result.elapsed);
    state.counters["requests_per_s"] = result.RequestsPerSecond();
  }
}

#define UF_FIG7(name, ...)                              \
  BENCHMARK_CAPTURE(NginxThroughput, name, __VA_ARGS__) \
      ->DenseRange(1, 3, 1)                             \
      ->Iterations(2)                                   \
      ->UseManualTime()                                 \
      ->Unit(::benchmark::kMillisecond)

UF_FIG7(uFork_1core, System::kUfork, 1, IsolationLevel::kFull);
UF_FIG7(uFork_1core_NoTocttou, System::kUfork, 1, IsolationLevel::kFault);
UF_FIG7(CheriBSD_multicore, System::kCheriBsd, 4, IsolationLevel::kFull);
UF_FIG7(CheriBSD_1core, System::kCheriBsd, 1, IsolationLevel::kFull);

}  // namespace
}  // namespace bench
}  // namespace ufork

BENCHMARK_MAIN();
