// Shared benchmark scaffolding: the three systems under comparison (μFork/Unikraft,
// CheriBSD-like MAS, Nephele-like VM clone), their calibrated cost models, layout presets for
// each experiment, and glue for reporting simulator virtual time through google-benchmark's
// manual-time mode.
//
// Calibration philosophy (see EXPERIMENTS.md): constants are anchored to the absolute numbers
// the paper publishes for its microbenchmarks; the macro results must then reproduce the
// paper's *shapes* (who wins, by what factor, where crossovers fall) without per-figure tuning.
#ifndef UFORK_BENCH_BENCH_COMMON_H_
#define UFORK_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <string>

#include "src/baseline/system.h"
#include "src/guest/guest.h"

namespace ufork {
namespace bench {

enum class System { kUfork, kCheriBsd, kNephele };

inline const char* SystemName(System system) {
  switch (system) {
    case System::kUfork:
      return "uFork";
    case System::kCheriBsd:
      return "CheriBSD";
    case System::kNephele:
      return "Nephele";
  }
  return "?";
}

// CheriBSD-specific cost-model deltas: buffered-I/O double copy in the monolithic write path
// and the pure-capability memcpy penalty on the prototype Morello microarchitecture ([64],
// [117]) make its streaming paths slower than the lean unikernel path.
inline CostModel CheriBsdCosts() {
  CostModel costs;
  costs.bulk_bytes_per_cycle = 1.9;
  costs.vfs_bytes_per_cycle = 2.1;
  // sleepqueue wakeup + idle-thread switch + exception-level crossings on the resume path.
  costs.blocking_wake = 4'800;
  // Pure-capability exception entry/exit on the Morello prototype is notably costlier than a
  // classical trap (documented purecap overheads, [64]/[117]).
  costs.syscall_trap = 1'650;
  return costs;
}

// --- layout presets -----------------------------------------------------------------------------

// Minimal hello-world image (Fig. 8): a small unikernel-style program.
inline LayoutConfig HelloLayout() {
  LayoutConfig layout;
  layout.text_size = 128 * kKiB;
  layout.rodata_size = 16 * kKiB;
  layout.got_size = 16 * kKiB;
  layout.data_size = 16 * kKiB;
  layout.heap_size = 1 * kMiB;
  layout.stack_size = 128 * kKiB;
  layout.tls_size = 4 * kKiB;
  layout.mmap_size = 64 * kKiB;
  return layout;
}

// Redis image: the paper's build uses a ~136.7 MB static heap (§5.2 "CoPA vs. CoA vs. Full
// Copy"); the heap size is fixed regardless of database size.
inline LayoutConfig RedisLayout() {
  LayoutConfig layout;
  layout.heap_size = static_cast<uint64_t>(136.7 * static_cast<double>(kMiB));
  layout.stack_size = 256 * kKiB;
  return layout;
}

// MicroPython Zygote image: interpreter + warm runtime.
inline LayoutConfig FaasLayout() {
  LayoutConfig layout;
  layout.heap_size = 8 * kMiB;
  return layout;
}

inline LayoutConfig HttpdLayout() {
  LayoutConfig layout;
  layout.heap_size = 4 * kMiB;
  return layout;
}

// --- kernel construction ------------------------------------------------------------------------

struct SystemConfig {
  System system = System::kUfork;
  LayoutConfig layout;
  int cores = 4;
  ForkStrategy strategy = ForkStrategy::kCopa;
  IsolationLevel isolation = IsolationLevel::kFull;
  uint64_t phys_mem_bytes = 3 * kGiB;
  double mas_allocator_dirty_fraction = 0.0;
  FaultAroundConfig fault_around;  // default: disabled (window=1), as in the calibrated figures
  int host_shards = 1;  // >1: sharded multi-threaded host (DESIGN.md §4.11)
  bool demand_paging = false;  // fault-driven population + reservations (DESIGN.md §4.12)
  // Incremental concurrent compaction (DESIGN.md §4.13): >0 bounds the pages relocated per
  // background-service quantum; 0 keeps the stop-the-world-only historical behaviour.
  uint64_t compact_budget_pages = 0;
  bool quarantine_freed_regions = false;  // Cornucopia-style revocation quarantine
};

inline std::unique_ptr<Kernel> MakeSystem(const SystemConfig& sc) {
  KernelConfig config;
  config.layout = sc.layout;
  config.cores = sc.cores;
  config.strategy = sc.strategy;
  config.isolation = sc.isolation;
  config.phys_mem_bytes = sc.phys_mem_bytes;
  config.fault_around = sc.fault_around;
  config.host_shards = sc.host_shards;
  config.demand_paging = sc.demand_paging;
  config.compact_budget_pages = sc.compact_budget_pages;
  config.quarantine_freed_regions = sc.quarantine_freed_regions;
  switch (sc.system) {
    case System::kUfork:
      return MakeUforkKernel(config);
    case System::kCheriBsd: {
      config.costs = CheriBsdCosts();
      // A monolithic kernel always bounce-buffers user memory (copyin/copyout).
      config.isolation = IsolationLevel::kFull;
      MasParams params;
      params.allocator_dirty_fraction = sc.mas_allocator_dirty_fraction;
      return MakeMasKernel(config, params);
    }
    case System::kNephele:
      return MakeVmCloneKernel(config);
  }
  UF_UNREACHABLE();
}

// Runs a guest program to completion on a fresh kernel and returns the kernel for inspection.
inline std::unique_ptr<Kernel> RunGuestMain(const SystemConfig& sc, GuestFn main_fn,
                                            int pinned_core = -1) {
  auto kernel = MakeSystem(sc);
  auto pid = kernel->Spawn(MakeGuestEntry(std::move(main_fn)), "bench-main", pinned_core);
  UF_CHECK_MSG(pid.ok(), "benchmark spawn failed");
  kernel->Run();
  return kernel;
}

// Reports simulator cycles as this iteration's manual time.
inline void SetIterationCycles(::benchmark::State& state, Cycles cycles) {
  state.SetIterationTime(ToSeconds(cycles));
}

}  // namespace bench
}  // namespace ufork

#endif  // UFORK_BENCH_BENCH_COMMON_H_
