// Figure 9 — Unixbench Spawn and Context1 execution times.
//
// Spawn: 1000 consecutive fork+exit+wait cycles. Context1: two processes bounce an
// incrementing counter through a pair of pipes until it reaches 100k. Paper results to
// reproduce: Spawn 56 ms (μFork) vs 198 ms (CheriBSD); Context1 245 ms vs 419 ms — the gaps
// come from fork latency and from exception-less single-privilege-level syscalls respectively.
#include "bench/bench_common.h"
#include "src/apps/unixbench.h"

namespace ufork {
namespace bench {
namespace {

void UnixbenchSpawnBench(::benchmark::State& state, System system) {
  SystemConfig sc;
  sc.system = system;
  sc.layout = HelloLayout();
  for (auto _ : state) {
    SpawnResult result;
    RunGuestMain(sc, [&result](Guest& g) -> SimTask<void> {
      co_await UnixbenchSpawn(g, 1000, &result);
    });
    SetIterationCycles(state, result.elapsed);
    state.counters["total_ms"] = ToMilliseconds(result.elapsed);
    state.counters["per_fork_us"] = result.ForkLatencyUs();
  }
}

void UnixbenchContext1Bench(::benchmark::State& state, System system) {
  SystemConfig sc;
  sc.system = system;
  sc.layout = HelloLayout();
  for (auto _ : state) {
    Context1Result result;
    RunGuestMain(sc, [&result](Guest& g) -> SimTask<void> {
      co_await UnixbenchContext1(g, 100'000, &result);
    });
    SetIterationCycles(state, result.elapsed);
    state.counters["total_ms"] = ToMilliseconds(result.elapsed);
  }
}

BENCHMARK_CAPTURE(UnixbenchSpawnBench, uFork, System::kUfork)
    ->Iterations(2)
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(UnixbenchSpawnBench, CheriBSD, System::kCheriBsd)
    ->Iterations(2)
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(UnixbenchContext1Bench, uFork, System::kUfork)
    ->Iterations(2)
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(UnixbenchContext1Bench, CheriBSD, System::kCheriBsd)
    ->Iterations(2)
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ufork

BENCHMARK_MAIN();
