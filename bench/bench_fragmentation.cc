// Fragmentation & compaction bench (paper §6 "Fragmentation" + our compaction extension), and
// the spawn-vs-fork+exec ablation (the "f+e only" design point of Table 1).
//
// Fragmentation scenario: a churn of short-lived μprocesses leaves holes in the single address
// space; we measure external fragmentation before/after compaction and the compactor's cost.
// Spawn ablation: end-to-end latency of running a program via posix_spawn vs fork+exec as the
// parent image grows — fork must duplicate the parent's page tables, spawn must not.
#include "bench/bench_common.h"
#include "src/ufork/compaction.h"

namespace ufork {
namespace bench {
namespace {

SimTask<void> ParkForever(Guest& g, const std::string& queue) {
  auto fd = co_await g.MqOpen(queue, true);
  UF_CHECK(fd.ok());
  auto buf = g.Malloc(16);
  UF_CHECK(buf.ok());
  (void)co_await g.Read(*fd, *buf, 1);
}

void FragmentationCompaction(::benchmark::State& state) {
  const int survivors = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SystemConfig sc;
    sc.layout = HelloLayout();
    auto kernel = MakeSystem(sc);
    kernel->sched().set_allow_blocked_exit(true);
    // Interleave short-lived and parked μprocesses, then let the short-lived ones exit:
    // the classic checkerboard that blocks large contiguous allocations.
    for (int i = 0; i < survivors; ++i) {
      UF_CHECK(kernel
                   ->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                             g.Compute(100);
                             co_return;
                           }),
                           "short")
                   .ok());
      GuestFn parked = [i](Guest& g) -> SimTask<void> {
        co_await ParkForever(g, "/mq/frag-park");
      };
      UF_CHECK(kernel->Spawn(MakeGuestEntry(std::move(parked)), "parked").ok());
    }
    kernel->Run();

    const double frag_before = kernel->address_space().Stats().ExternalFragmentation();
    const Cycles t0 = kernel->sched().Now();
    auto stats = CompactAddressSpace(*kernel);
    UF_CHECK(stats.ok());
    const Cycles compaction_cycles = kernel->sched().Now() - t0;
    const double frag_after = kernel->address_space().Stats().ExternalFragmentation();

    SetIterationCycles(state, compaction_cycles == 0 ? 1 : compaction_cycles);
    state.counters["frag_before"] = frag_before;
    state.counters["frag_after"] = frag_after;
    state.counters["regions_moved"] = static_cast<double>(stats->regions_moved);
    state.counters["caps_relocated"] = static_cast<double>(stats->caps_relocated);
  }
}

BENCHMARK(FragmentationCompaction)
    ->Arg(8)
    ->Arg(32)
    ->Iterations(2)
    ->UseManualTime()
    ->Unit(::benchmark::kMicrosecond);

void SpawnVsForkExec(::benchmark::State& state, bool use_spawn) {
  const uint64_t heap_mb = static_cast<uint64_t>(state.range(0));
  SystemConfig sc;
  sc.layout.heap_size = heap_mb * kMiB;
  for (auto _ : state) {
    auto kernel = MakeSystem(sc);
    kernel->RegisterProgram("noop", MakeGuestEntry([](Guest& g) -> SimTask<void> {
      co_await g.Exit(0);
    }));
    Cycles elapsed = 0;
    auto pid = kernel->Spawn(
        MakeGuestEntry([&elapsed, use_spawn](Guest& g) -> SimTask<void> {
          Scheduler& sched = g.kernel().sched();
          const Cycles t0 = sched.Now();
          if (use_spawn) {
            auto child = co_await g.SpawnProgram("noop");
            UF_CHECK(child.ok());
          } else {
            auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
              (void)co_await cg.Exec("noop");
              co_await cg.Exit(1);
            });
            UF_CHECK(child.ok());
          }
          (void)co_await g.Wait();
          elapsed = sched.Now() - t0;
        }),
        "launcher");
    UF_CHECK(pid.ok());
    kernel->Run();
    SetIterationCycles(state, elapsed);
    state.counters["latency_us"] = ToMicroseconds(elapsed);
    state.counters["parent_heap_MB"] = static_cast<double>(heap_mb);
  }
}

BENCHMARK_CAPTURE(SpawnVsForkExec, posix_spawn, true)
    ->Arg(4)->Arg(32)->Arg(128)
    ->Iterations(2)->UseManualTime()->Unit(::benchmark::kMicrosecond);
BENCHMARK_CAPTURE(SpawnVsForkExec, fork_exec, false)
    ->Arg(4)->Arg(32)->Arg(128)
    ->Iterations(2)->UseManualTime()->Unit(::benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace ufork

BENCHMARK_MAIN();
