// Fragmentation & compaction bench (paper §6 "Fragmentation" + our compaction extension), and
// the spawn-vs-fork+exec ablation (the "f+e only" design point of Table 1).
//
// Fragmentation scenario: a churn of short-lived μprocesses leaves holes in the single address
// space; we measure external fragmentation before/after compaction and the compactor's cost.
// Spawn ablation: end-to-end latency of running a program via posix_spawn vs fork+exec as the
// parent image grows — fork must duplicate the parent's page tables, spawn must not.
#include "bench/bench_common.h"
#include "src/ufork/compaction.h"

namespace ufork {
namespace bench {
namespace {

SimTask<void> ParkForever(Guest& g, const std::string& queue) {
  auto fd = co_await g.MqOpen(queue, true);
  UF_CHECK(fd.ok());
  auto buf = g.Malloc(16);
  UF_CHECK(buf.ok());
  (void)co_await g.Read(*fd, *buf, 1);
}

void FragmentationCompaction(::benchmark::State& state) {
  const int survivors = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SystemConfig sc;
    sc.layout = HelloLayout();
    auto kernel = MakeSystem(sc);
    kernel->sched().set_allow_blocked_exit(true);
    // Interleave short-lived and parked μprocesses, then let the short-lived ones exit:
    // the classic checkerboard that blocks large contiguous allocations.
    for (int i = 0; i < survivors; ++i) {
      UF_CHECK(kernel
                   ->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                             g.Compute(100);
                             co_return;
                           }),
                           "short")
                   .ok());
      GuestFn parked = [i](Guest& g) -> SimTask<void> {
        co_await ParkForever(g, "/mq/frag-park");
      };
      UF_CHECK(kernel->Spawn(MakeGuestEntry(std::move(parked)), "parked").ok());
    }
    kernel->Run();

    const AddressSpaceStats before = kernel->address_space().Stats();
    const Cycles t0 = kernel->sched().Now();
    auto stats = CompactAddressSpace(*kernel);
    UF_CHECK(stats.ok());
    const Cycles compaction_cycles = kernel->sched().Now() - t0;
    const AddressSpaceStats after = kernel->address_space().Stats();

    SetIterationCycles(state, compaction_cycles == 0 ? 1 : compaction_cycles);
    state.counters["frag_before"] = before.ExternalFragmentation();
    state.counters["frag_after"] = after.ExternalFragmentation();
    state.counters["largest_free_before"] = static_cast<double>(before.largest_free_block);
    state.counters["largest_free_after"] = static_cast<double>(after.largest_free_block);
    // The whole pass is one global pause: the frag-gate's stop-the-world reference point.
    state.counters["pause_cycles_max"] = static_cast<double>(compaction_cycles);
    state.counters["regions_moved"] = static_cast<double>(stats->regions_moved);
    state.counters["caps_relocated"] = static_cast<double>(stats->caps_relocated);
  }
}

BENCHMARK(FragmentationCompaction)
    ->Arg(8)
    ->Arg(32)
    ->Iterations(2)
    ->UseManualTime()
    ->Unit(::benchmark::kMicrosecond);

// Same checkerboard, reclaimed by the background CompactionService (DESIGN.md §4.13) instead
// of a stop-the-world pass: budgeted quanta interleave with the (parked) mutators, moved-from
// and freed regions pass through the revocation quarantine, and the sweep drains before the
// service retires. The frag-gate holds this row to >= 0.9x the stop-the-world row's recovered
// contiguity at <= 0.1x its pause.
void FragmentationCompactionIncremental(::benchmark::State& state) {
  const int survivors = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SystemConfig sc;
    sc.layout = HelloLayout();
    sc.compact_budget_pages = 8;
    sc.quarantine_freed_regions = true;
    auto kernel = MakeSystem(sc);
    kernel->sched().set_allow_blocked_exit(true);
    for (int i = 0; i < survivors; ++i) {
      UF_CHECK(kernel
                   ->Spawn(MakeGuestEntry([](Guest& g) -> SimTask<void> {
                             g.Compute(100);
                             co_return;
                           }),
                           "short")
                   .ok());
      GuestFn parked = [i](Guest& g) -> SimTask<void> {
        co_await ParkForever(g, "/mq/frag-park");
      };
      UF_CHECK(kernel->Spawn(MakeGuestEntry(std::move(parked)), "parked").ok());
    }
    kernel->Run();  // short-lived μprocesses exit; the sweep drains their quarantined regions

    const AddressSpaceStats before = kernel->address_space().Stats();
    // Host-side elapsed virtual time spans a Run(), so use the drain clock (Now() outside a
    // simulated thread reads the boot clock, which only Run-external charges advance).
    const Cycles t0 = kernel->sched().CompletionTime();
    UF_CHECK(kernel->compaction().Kick());
    kernel->Run();  // compactd quanta advance until the pass lands and the sweep is drained
    const Cycles elapsed = kernel->sched().CompletionTime() - t0;
    const AddressSpaceStats after = kernel->address_space().Stats();
    UF_CHECK(after.quarantined_bytes == 0);

    SetIterationCycles(state, elapsed == 0 ? 1 : elapsed);
    state.counters["largest_free_before"] = static_cast<double>(before.largest_free_block);
    state.counters["largest_free_after"] = static_cast<double>(after.largest_free_block);
    state.counters["pause_cycles_max"] =
        static_cast<double>(kernel->stats().pause_cycles_max.value());
    state.counters["compact_steps"] = static_cast<double>(kernel->stats().compact_steps.value());
    state.counters["regions_moved"] =
        static_cast<double>(kernel->stats().compact_regions_moved.value());
    state.counters["caps_revoked"] = static_cast<double>(kernel->stats().caps_revoked.value());
  }
}

BENCHMARK(FragmentationCompactionIncremental)
    ->Arg(8)
    ->Arg(32)
    ->Iterations(2)
    ->UseManualTime()
    ->Unit(::benchmark::kMicrosecond);

void SpawnVsForkExec(::benchmark::State& state, bool use_spawn) {
  const uint64_t heap_mb = static_cast<uint64_t>(state.range(0));
  SystemConfig sc;
  sc.layout.heap_size = heap_mb * kMiB;
  for (auto _ : state) {
    auto kernel = MakeSystem(sc);
    kernel->RegisterProgram("noop", MakeGuestEntry([](Guest& g) -> SimTask<void> {
      co_await g.Exit(0);
    }));
    Cycles elapsed = 0;
    auto pid = kernel->Spawn(
        MakeGuestEntry([&elapsed, use_spawn](Guest& g) -> SimTask<void> {
          Scheduler& sched = g.kernel().sched();
          const Cycles t0 = sched.Now();
          if (use_spawn) {
            auto child = co_await g.SpawnProgram("noop");
            UF_CHECK(child.ok());
          } else {
            auto child = co_await g.Fork([](Guest& cg) -> SimTask<void> {
              (void)co_await cg.Exec("noop");
              co_await cg.Exit(1);
            });
            UF_CHECK(child.ok());
          }
          (void)co_await g.Wait();
          elapsed = sched.Now() - t0;
        }),
        "launcher");
    UF_CHECK(pid.ok());
    kernel->Run();
    SetIterationCycles(state, elapsed);
    state.counters["latency_us"] = ToMicroseconds(elapsed);
    state.counters["parent_heap_MB"] = static_cast<double>(heap_mb);
  }
}

BENCHMARK_CAPTURE(SpawnVsForkExec, posix_spawn, true)
    ->Arg(4)->Arg(32)->Arg(128)
    ->Iterations(2)->UseManualTime()->Unit(::benchmark::kMicrosecond);
BENCHMARK_CAPTURE(SpawnVsForkExec, fork_exec, false)
    ->Arg(4)->Arg(32)->Arg(128)
    ->Iterations(2)->UseManualTime()->Unit(::benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace ufork

BENCHMARK_MAIN();
