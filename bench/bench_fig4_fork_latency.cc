// Figure 4 — Redis fork latency (μs).
//
// Measures the latency of the fork() call that creates the BGSAVE child, across database sizes
// and copy strategies. Paper results to reproduce (shape):
//   * μFork is consistently 5-10× faster than CheriBSD;
//   * CoPA cuts fork latency by up to 89× vs a synchronous full copy (23.2 ms -> 260 μs at a
//     100 MB database) and is up to 1.18× cheaper than CoA (260 vs 283 μs);
//   * TOCTTOU protection costs little (~2.6% on the save path at 100 MB).
#include "bench/redis_bench_util.h"

namespace ufork {
namespace bench {
namespace {

void RedisForkLatency(::benchmark::State& state, System system, ForkStrategy strategy,
                      IsolationLevel isolation) {
  const uint64_t db_bytes = static_cast<uint64_t>(state.range(0)) * 100 * kKiB;
  SystemConfig sc;
  sc.system = system;
  sc.layout = RedisLayout();
  sc.strategy = strategy;
  sc.isolation = isolation;
  for (auto _ : state) {
    const RedisRunResult result = RunRedisBgSave(sc, db_bytes);
    SetIterationCycles(state, result.fork_latency);
    state.counters["fork_us"] = ToMicroseconds(result.fork_latency);
    state.counters["db_MB"] = static_cast<double>(db_bytes) / static_cast<double>(kMiB);
  }
}

#define UF_FIG4(name, ...)                              \
  BENCHMARK_CAPTURE(RedisForkLatency, name, __VA_ARGS__) \
      ->RangeMultiplier(10)                             \
      ->Range(1, 1000)                                  \
      ->Iterations(2)                                   \
      ->UseManualTime()                                 \
      ->Unit(::benchmark::kMicrosecond)

UF_FIG4(uFork_CoPA, System::kUfork, ForkStrategy::kCopa, IsolationLevel::kFull);
UF_FIG4(uFork_CoA, System::kUfork, ForkStrategy::kCoa, IsolationLevel::kFull);
UF_FIG4(uFork_FullCopy, System::kUfork, ForkStrategy::kFull, IsolationLevel::kFull);
UF_FIG4(uFork_CoPA_NoTocttou, System::kUfork, ForkStrategy::kCopa, IsolationLevel::kFault);
UF_FIG4(CheriBSD, System::kCheriBsd, ForkStrategy::kCopa, IsolationLevel::kFull);

}  // namespace
}  // namespace bench
}  // namespace ufork

BENCHMARK_MAIN();
