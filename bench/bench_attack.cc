// Attack-battery campaign cost (DESIGN.md §4.14, EXPERIMENTS.md "Attack battery").
//
// Runs the full adversarial battery — one fork + trace pipe + contained fault per attack —
// as one iteration, per backend × {eager, demand paging}. Virtual time per campaign is the
// figure of merit: the battery is also the chaos-soak inner loop, so its cost bounds how many
// chaos × attack schedules a CI soak can explore. Counters carry the invariants the bench
// re-proves every iteration (deterministically, so a drift is a real behaviour change):
//
//   contained     per-campaign contained-SIGSEGV count (== battery attacks with a fatal verdict)
//   digest_lo32   low 32 bits of the campaign StateDigest — must be identical across every
//                 backend/paging row of this bench (the differential assertion, visible in the
//                 report without running the test suite)
#include <memory>

#include "bench/bench_common.h"
#include "src/attack/differential.h"

namespace ufork {
namespace bench {
namespace {

KernelConfig CampaignConfig(bool demand_paging) {
  KernelConfig config;
  config.layout.heap_size = 1 * kMiB;
  config.demand_paging = demand_paging;
  return config;
}

void RunCampaignBench(::benchmark::State& state, const SystemFactory& factory,
                      const char* label) {
  const bool demand = state.range(0) != 0;
  for (auto _ : state) {
    CampaignResult result = RunBatteryCampaign(factory, CampaignConfig(demand), label);
    SetIterationCycles(state, result.elapsed);
    state.counters["contained"] = static_cast<double>(result.faults_contained);
    state.counters["digest_lo32"] = static_cast<double>(result.digest & 0xFFFFFFFFull);
  }
}

void BM_AttackBattery_Ufork(::benchmark::State& state) {
  RunCampaignBench(
      state, [](KernelConfig c) { return MakeUforkKernel(std::move(c)); }, "ufork");
}
void BM_AttackBattery_Mas(::benchmark::State& state) {
  RunCampaignBench(
      state, [](KernelConfig c) { return MakeMasKernel(std::move(c)); }, "mas");
}
void BM_AttackBattery_VmClone(::benchmark::State& state) {
  RunCampaignBench(
      state, [](KernelConfig c) { return MakeVmCloneKernel(std::move(c)); }, "vmclone");
}

BENCHMARK(BM_AttackBattery_Ufork)->Arg(0)->Arg(1)->UseManualTime();
BENCHMARK(BM_AttackBattery_Mas)->Arg(0)->Arg(1)->UseManualTime();
BENCHMARK(BM_AttackBattery_VmClone)->Arg(0)->Arg(1)->UseManualTime();

}  // namespace
}  // namespace bench
}  // namespace ufork

BENCHMARK_MAIN();
